//! `campaign fuzz`: the randomized-scenario anomaly hunter.
//!
//! The harness samples thousands of randomized [`Scenario`]s across
//! every lab axis ([`gen`]), runs each through the existing trial
//! pipeline on the shared [`Executor`] pool, and judges the result
//! against the load-line/guard-band model and the engine invariants
//! ([`oracle`]). Flagged cases are shrunk to minimal reproducers with
//! the proptest stand-in's bounded deterministic shrinker and emitted
//! as a replayable findings report ([`findings`]) — each row converts
//! mechanically into a pinned characterization test (see
//! `tests/fuzz_characterization.rs` for the loop closed once).
//!
//! Determinism contract: a fuzz run is a pure function of
//! `(seed, cases, tolerance)`. Case sampling depends only on
//! `(seed, case_index)`, judging and shrinking only on the sampled
//! scenario, and findings are emitted in case-index order — so the
//! rendered report is byte-identical across runs, worker counts, and
//! shard splits (shards own case indices round-robin and merge by
//! sorting on the case column).

pub mod findings;
pub mod gen;
pub mod oracle;

use proptest::shrink::{integer_candidates, shrink};

use crate::exec::Executor;
use crate::scenario::{
    AlphabetSpec, ChannelSelect, NoiseSpec, PayloadSpec, PlatformId, ReceiverSpec, Scenario,
};
use crate::shard::ShardSpec;
use findings::Finding;
use ichannels::channel::ChannelKind;
use oracle::{Anomaly, Oracle};

/// Parameters of one fuzz run — everything the report depends on.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FuzzConfig {
    /// Base seed; every case derives from `(seed, case_index)`.
    pub seed: u64,
    /// Number of cases to sample across all shards.
    pub cases: u64,
    /// Base tolerance of the anomaly oracle's envelopes.
    pub tolerance: f64,
    /// Which round-robin slice of case indices this process runs.
    pub shard: ShardSpec,
    /// Oracle-evaluation budget per finding for the shrinker.
    pub max_shrink_evals: usize,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        FuzzConfig {
            seed: 0xF0552,
            cases: 1024,
            tolerance: Oracle::default().tolerance,
            shard: ShardSpec::full(),
            max_shrink_evals: 48,
        }
    }
}

/// The outcome of one fuzz run.
#[derive(Debug, Clone, PartialEq)]
pub struct FuzzReport {
    /// The configuration that produced it.
    pub config: FuzzConfig,
    /// Cases this shard actually ran.
    pub cases_run: usize,
    /// Shrunk findings, in case-index order.
    pub findings: Vec<Finding>,
}

impl FuzzReport {
    /// Renders the findings as the `fuzz_findings.jsonl` document.
    pub fn to_jsonl(&self) -> String {
        findings::findings_to_jsonl(&self.findings)
    }
}

/// Runs the fuzz campaign: sample → judge (on the executor pool) →
/// shrink (serially, in case order, so the report is deterministic for
/// any worker count).
pub fn run(config: &FuzzConfig, executor: &Executor) -> FuzzReport {
    let oracle = Oracle::new(config.tolerance);
    let owned: Vec<u64> = (0..config.cases)
        .filter(|&i| config.shard.owns(i as usize))
        .collect();
    let flagged: Vec<Option<(u64, Scenario, Anomaly)>> = executor.map(&owned, |&case| {
        let s = gen::sample_scenario(config.seed, case);
        oracle.judge(&s).map(|a| (case, s, a))
    });
    ichannels_obs::counter_add("fuzz.cases", owned.len() as u64);
    let findings: Vec<Finding> = flagged
        .into_iter()
        .flatten()
        .map(|(case, scenario, anomaly)| {
            shrink_to_finding(config, &oracle, case, &scenario, &anomaly)
        })
        .collect();
    ichannels_obs::counter_add("fuzz.findings", findings.len() as u64);
    FuzzReport {
        config: *config,
        cases_run: owned.len(),
        findings,
    }
}

/// Re-derives the canonical trial seed after a shrink edit changed the
/// cell key, and keeps only supported variants.
fn reseeded(base_seed: u64, mut s: Scenario) -> Option<Scenario> {
    if !s.supported() {
        return None;
    }
    s.seed = gen::cell_seed(base_seed, &s);
    Some(s)
}

/// Shrink candidates for one scenario, simplest first: structural
/// drops (app, knob, mitigations, noise, frequency, receiver, payload
/// shape, alphabet, channel kind, platform) ahead of numeric
/// reductions (payload symbols, calibration reps). Every candidate is
/// strictly simpler, stays supported, and carries its own cell-derived
/// seed.
fn shrink_candidates(base_seed: u64, s: &Scenario) -> Vec<Scenario> {
    let mut out: Vec<Scenario> = Vec::new();
    let mut push = |candidate: Scenario| {
        if let Some(c) = reseeded(base_seed, candidate) {
            out.push(c);
        }
    };
    if s.app.is_some() {
        let mut c = s.clone();
        c.app = None;
        push(c);
    }
    if s.knob.is_some() {
        let mut c = s.clone();
        c.knob = None;
        push(c);
    }
    if !s.mitigations.is_empty() {
        if s.mitigations.len() > 1 {
            let mut c = s.clone();
            c.mitigations.clear();
            push(c);
        }
        for i in 0..s.mitigations.len() {
            let mut c = s.clone();
            c.mitigations.remove(i);
            push(c);
        }
    }
    if s.noise != NoiseSpec::Quiet {
        let mut c = s.clone();
        c.noise = NoiseSpec::Quiet;
        push(c);
    }
    if s.freq_ghz.is_some() {
        let mut c = s.clone();
        c.freq_ghz = None;
        push(c);
    }
    if !s.receiver.is_default() {
        let mut c = s.clone();
        c.receiver = ReceiverSpec::Calibrated;
        push(c);
    }
    if s.payload != PayloadSpec::Random {
        let mut c = s.clone();
        c.payload = PayloadSpec::Random;
        push(c);
    }
    match s.channel {
        ChannelSelect::MultiLevel(kind, AlphabetSpec::Full7) => {
            let mut c = s.clone();
            c.channel = ChannelSelect::MultiLevel(kind, AlphabetSpec::Phi6);
            push(c);
        }
        ChannelSelect::MultiLevel(kind, AlphabetSpec::Phi6) => {
            let mut c = s.clone();
            c.channel = ChannelSelect::MultiLevel(kind, AlphabetSpec::Paper4);
            push(c);
        }
        _ => {}
    }
    let kind = match s.channel {
        ChannelSelect::Icc(k) | ChannelSelect::MultiLevel(k, _) => Some(k),
        _ => None,
    };
    if let Some(k) = kind {
        if k != ChannelKind::Thread {
            let mut c = s.clone();
            c.channel = match s.channel {
                ChannelSelect::Icc(_) => ChannelSelect::Icc(ChannelKind::Thread),
                ChannelSelect::MultiLevel(_, a) => {
                    ChannelSelect::MultiLevel(ChannelKind::Thread, a)
                }
                other => other,
            };
            push(c);
        }
    }
    if s.platform != PlatformId::CannonLake {
        // Cannon Lake supports all three channel kinds (2C/4T SMT),
        // so the move is always a candidate; platform-specific
        // anomalies simply reject it.
        let mut c = s.clone();
        c.platform = PlatformId::CannonLake;
        push(c);
    }
    for symbols in integer_candidates(s.payload_symbols, 4) {
        let mut c = s.clone();
        c.payload_symbols = symbols;
        push(c);
    }
    for reps in integer_candidates(s.calib_reps, 1) {
        let mut c = s.clone();
        c.calib_reps = reps;
        push(c);
    }
    out
}

/// Shrinks one flagged case to a minimal reproducer and renders the
/// finding row. The shrink oracle accepts a candidate only when it
/// still shows the *same anomaly kind*, so every accepted step keeps
/// the finding's class while simplifying its cell.
fn shrink_to_finding(
    config: &FuzzConfig,
    oracle: &Oracle,
    case: u64,
    scenario: &Scenario,
    anomaly: &Anomaly,
) -> Finding {
    let kind = anomaly.kind;
    let mut last: Option<Anomaly> = None;
    let report = shrink(
        scenario.clone(),
        |s| shrink_candidates(config.seed, s),
        |candidate| match oracle.judge(candidate) {
            Some(a) if a.kind == kind => {
                last = Some(a);
                true
            }
            _ => false,
        },
        config.max_shrink_evals,
    );
    // The anomaly at the minimal scenario: the last accepted one, or
    // the original when no candidate was accepted.
    let minimal_anomaly = last.unwrap_or_else(|| anomaly.clone());
    Finding {
        case,
        seed: config.seed,
        kind: kind.label().to_string(),
        cell: scenario.cell_key(),
        cell_seed: scenario.seed,
        measured: anomaly.measured,
        allowed: anomaly.allowed,
        shrunk_cell: report.minimal.cell_key(),
        shrunk_seed: report.minimal.seed,
        shrunk_symbols: report.minimal.payload_symbols as u64,
        shrunk_measured: minimal_anomaly.measured,
        shrunk_allowed: minimal_anomaly.allowed,
        shrink_steps: report.steps as u64,
        shrink_evals: report.evals as u64,
        detail: minimal_anomaly.detail,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shrink_candidates_are_supported_and_reseeded() {
        let s = gen::sample_scenario(0xF0552, 5);
        for c in shrink_candidates(0xF0552, &s) {
            assert!(c.supported(), "unsupported candidate {}", c.label());
            assert_eq!(c.seed, gen::cell_seed(0xF0552, &c));
            // calib_reps is not part of the cell key, so compare the
            // whole scenario: every candidate must be a real edit.
            let mut c_like_s = c.clone();
            c_like_s.seed = s.seed;
            assert_ne!(c_like_s, s, "candidate did not simplify");
        }
    }

    /// Envelope-calibration sweep: run `cargo test -p ichannels-lab
    /// calibration_sweep --release -- --ignored --nocapture` to print
    /// every finding a seed produces. Not part of the suite — the
    /// envelope constants in [`oracle`] were tuned against its output.
    #[test]
    #[ignore = "manual envelope calibration harness"]
    fn calibration_sweep() {
        let config = FuzzConfig {
            cases: 2048,
            ..FuzzConfig::default()
        };
        let report = run(&config, &Executor::auto());
        println!(
            "{} cases, {} findings",
            report.cases_run,
            report.findings.len()
        );
        println!("{}", report.to_jsonl());
    }

    #[test]
    fn empty_shard_produces_an_empty_report() {
        let config = FuzzConfig {
            cases: 0,
            ..FuzzConfig::default()
        };
        let report = run(&config, &Executor::serial());
        assert_eq!(report.cases_run, 0);
        assert!(report.findings.is_empty());
        assert_eq!(report.to_jsonl(), "");
    }
}

//! # `ichannels-lab` — the parallel experiment-campaign engine
//!
//! The evaluation substrate of the IChannels reproduction: instead of
//! every figure module hand-rolling a serial trial loop, experiments are
//! described declaratively and executed by a worker pool.
//!
//! * [`scenario`] — [`Scenario`]: one fully-specified simulated run
//!   (platform, channel, level alphabet, noise, mitigation set,
//!   concurrent app, payload, seed);
//! * [`grid`] — [`Grid`]: Cartesian sweeps over scenario axes with
//!   per-axis overrides and stable per-trial seed derivation;
//! * [`exec`] — [`Executor`]: a `std::thread` worker pool whose results
//!   are bit-identical to a serial run (every trial re-derives all of
//!   its randomness from the scenario seed);
//! * [`report`] — per-trial records, per-cell aggregation through
//!   `ichannels_meter::stats`, and streaming JSONL + CSV export through
//!   `ichannels_meter::export`;
//! * [`shard`] — [`ShardSpec`]: deterministic round-robin partitioning
//!   of a campaign across processes, plus stream reload and merge back
//!   into enumeration order (byte-identical to an unsharded run);
//! * [`trace`] — [`trace::TraceSpec`]: the characterization timelines
//!   (Figures 6, 7(b), 9) as declarative specs run on the same pool;
//! * [`campaigns`] — ready-made campaigns: client-vs-server,
//!   noise-robustness, mitigation-coverage, modulation-capacity, and
//!   receiver-calibration sweeps.
//!
//! Beyond channel trials, a [`Scenario`] can describe a direct
//! micro-architectural measurement (a [`scenario::ProbeKind`]: TP
//! distributions, power-gate wake, IDQ undelivered slots, per-level
//! receiver durations, operating-point projections) and a
//! design-parameter override ([`scenario::Knob`]), which is how every
//! characterization figure regenerates through the engine.
//!
//! # Quickstart
//!
//! ```
//! use ichannels_lab::{campaigns, Executor, Grid};
//! use ichannels_lab::scenario::{NoiseSpec, PlatformId};
//! use ichannels::channel::ChannelKind;
//!
//! // Sweep two platforms × two channels × two noise levels.
//! let grid = Grid::new()
//!     .platforms(vec![PlatformId::CannonLake, PlatformId::CoffeeLake])
//!     .kinds(&[ChannelKind::Thread, ChannelKind::Cores])
//!     .noises(vec![NoiseSpec::Quiet, NoiseSpec::Low])
//!     .payload_symbols(6);
//! let report = campaigns::run("demo", &grid, Executor::new(2));
//! assert_eq!(report.records.len(), 8);
//! assert_eq!(report.cells.len(), 8);
//! // Every cell sustains the paper's ~2.9 kb/s transaction rate, and
//! // quiet cells stay within the sub-percent measurement-jitter floor.
//! for record in &report.records {
//!     assert!(record.metrics.throughput_bps > 2_500.0);
//!     if record.scenario.noise == NoiseSpec::Quiet {
//!         assert!(record.metrics.ser < 0.2, "{}", record.scenario.label());
//!     }
//! }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod campaigns;
pub mod exec;
pub mod fuzz;
pub mod grid;
pub mod report;
pub mod scenario;
pub mod shard;
pub mod trace;

pub use campaigns::{CampaignReport, CampaignRun, MergedCampaign, ResumeCorruption, RunConfig};
pub use exec::Executor;
pub use fuzz::{FuzzConfig, FuzzReport};
pub use grid::{AxisSummary, Grid};
pub use report::{CellSummary, TrialMetrics, TrialRecord, TrialRow};
pub use scenario::{
    AlphabetSpec, AppKind, AppSpec, BaselineKind, ChannelSelect, IdqCondition, Knob, NoiseSpec,
    PayloadSpec, PlatformId, ProbeKind, ReceiverSpec, Scenario, TrialContext,
};
pub use shard::{MergeError, ShardSpec, ShardStream};
pub use trace::{TraceProgram, TraceRun, TraceSpec};

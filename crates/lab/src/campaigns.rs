//! Ready-made campaigns: named grids answering the evaluation questions
//! the ROADMAP keeps asking, plus the run-and-export drivers.
//!
//! Two execution paths:
//!
//! * [`run`] — in-memory: run a grid, get a [`CampaignReport`] (what
//!   the figure harnesses use);
//! * [`run_to_dir`] — streaming: trial rows land in the campaign's
//!   JSONL **in enumeration order while the run executes**, optionally
//!   restricted to one [`ShardSpec`] slice and optionally resuming a
//!   previous partial stream (completed trials are loaded, verified
//!   against their scenario seeds, and skipped). [`merge_files`] is
//!   the inverse of sharding: N shard streams back into the
//!   byte-identical unsharded artifacts.

use std::collections::{BTreeMap, BTreeSet};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use ichannels::channel::ChannelKind;
use ichannels::mitigations::Mitigation;
use ichannels_meter::export::JsonlWriter;

use crate::exec::Executor;
use crate::grid::Grid;
use crate::report::{
    rows_to_csv, summaries_to_csv, summarize_cells, summarize_rows, CellSummary, TrialRecord,
    TrialRow,
};
use crate::scenario::{AlphabetSpec, ChannelSelect, NoiseSpec, PlatformId, ReceiverSpec, Scenario};
use crate::shard::{merge_streams, MergeError, ShardSpec, ShardStream};

/// A completed campaign: raw trials plus per-cell aggregates.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// Campaign name (used for export file names).
    pub name: String,
    /// Raw trial records, in grid enumeration order.
    pub records: Vec<TrialRecord>,
    /// Per-cell aggregates, sorted by cell key.
    pub cells: Vec<CellSummary>,
}

impl CampaignReport {
    /// Writes `{name}_trials.jsonl`, `{name}_trials.csv`, and
    /// `{name}_cells.csv` under `dir`; returns the paths.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn write_to(&self, dir: impl AsRef<Path>) -> io::Result<Vec<PathBuf>> {
        let dir = dir.as_ref();
        let jsonl_path = dir.join(format!("{}_trials.jsonl", self.name));
        let mut writer = JsonlWriter::create(&jsonl_path)?;
        for record in &self.records {
            writer.write_row(&record.jsonl_row())?;
        }
        writer.finish()?;
        let rows: Vec<TrialRow> = self.records.iter().map(TrialRow::from_record).collect();
        let [trials_path, cells_path] = write_trial_csvs(&rows, &self.cells, dir, &self.name)?;
        Ok(vec![jsonl_path, trials_path, cells_path])
    }
}

/// Runs a grid on `executor` and aggregates it into a report.
pub fn run(name: &str, grid: &Grid, executor: Executor) -> CampaignReport {
    let records = executor.run(&grid.scenarios());
    let cells = summarize_cells(&records);
    CampaignReport {
        name: name.to_string(),
        records,
        cells,
    }
}

/// How a streamed campaign run executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunConfig {
    /// Which slice of the grid this process runs.
    pub shard: ShardSpec,
    /// Scan an existing trial JSONL and skip its completed trials.
    pub resume: bool,
    /// Print a live progress ticker (cells done/total, ETA, error
    /// cells) to stderr. Strictly out-of-band: stdout and every
    /// artifact stay byte-identical with the ticker on or off.
    pub progress: bool,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            shard: ShardSpec::full(),
            resume: false,
            progress: false,
        }
    }
}

/// The `--progress` stderr ticker: tracks cell completion over the
/// scheduled scenarios and repaints one status line per emitted trial
/// row. Writes only to stderr, so artifacts and stdout are untouched.
struct ProgressTicker {
    name: String,
    started: std::time::Instant,
    /// Trials not yet emitted, per cell key; a cell is done when its
    /// count reaches zero.
    remaining: BTreeMap<String, usize>,
    cells_total: usize,
    cells_done: usize,
    error_cells: BTreeSet<String>,
    trials_total: usize,
    trials_done: usize,
}

impl ProgressTicker {
    fn new(name: &str, scenarios: &[Scenario]) -> Self {
        let mut remaining: BTreeMap<String, usize> = BTreeMap::new();
        for s in scenarios {
            *remaining.entry(s.cell_key()).or_insert(0) += 1;
        }
        ProgressTicker {
            name: name.to_string(),
            // lint:allow(D002): ETA estimate for the stderr ticker only;
            // never reaches an artifact.
            started: std::time::Instant::now(),
            cells_total: remaining.len(),
            trials_total: scenarios.len(),
            remaining,
            cells_done: 0,
            error_cells: BTreeSet::new(),
            trials_done: 0,
        }
    }

    /// Accounts one emitted row (resumed or executed) and repaints.
    fn record(&mut self, row: &TrialRow) {
        self.trials_done += 1;
        if let Some(left) = self.remaining.get_mut(&row.cell) {
            *left = left.saturating_sub(1);
            if *left == 0 {
                self.cells_done += 1;
            }
        }
        if row.error.is_some() {
            self.error_cells.insert(row.cell.clone());
        }
        self.paint();
    }

    fn eta(&self) -> String {
        let left = self.trials_total.saturating_sub(self.trials_done);
        if self.trials_done == 0 || left == 0 {
            return "--".to_string();
        }
        let per_trial = self.started.elapsed().as_secs_f64() / self.trials_done as f64;
        let secs = per_trial * left as f64;
        if secs >= 90.0 {
            format!("{:.1}min", secs / 60.0)
        } else {
            format!("{secs:.0}s")
        }
    }

    fn paint(&self) {
        eprint!(
            "\r{}: cells {}/{} · trials {}/{} · {} error cell(s) · ETA {}   ",
            self.name,
            self.cells_done,
            self.cells_total,
            self.trials_done,
            self.trials_total,
            self.error_cells.len(),
            self.eta()
        );
    }

    /// Final repaint plus the newline that releases the status line.
    fn finish(&self) {
        self.paint();
        eprintln!();
    }
}

/// A completed streamed campaign run (one shard of it, possibly
/// resumed).
#[derive(Debug, Clone)]
pub struct CampaignRun {
    /// Campaign name.
    pub name: String,
    /// Export file stem (`name`, or `name_shardIofN` when sharded).
    pub stem: String,
    /// This run's trial rows, in grid enumeration order.
    pub rows: Vec<TrialRow>,
    /// Per-cell aggregates of this run's rows (partial cells for a
    /// shard — the merged stream is the authoritative aggregate).
    pub cells: Vec<CellSummary>,
    /// Trials executed by this invocation.
    pub executed: usize,
    /// Trials reloaded from the resumed stream instead of re-run.
    pub resumed: usize,
    /// Files written.
    pub paths: Vec<PathBuf>,
}

/// Rejects a resume against a stream this run must not trust: the
/// JSONL shard header ties a sharded stream to its campaign, its
/// `I/N` spec, and its scenario total, and resuming across a partition
/// mismatch would silently re-seed another shard's slice. A missing,
/// empty, or torn-at-the-first-line stream is fine — there is simply
/// nothing to resume.
fn validate_resume_stream(
    text: &str,
    path: &Path,
    name: &str,
    shard: ShardSpec,
    total: usize,
) -> io::Result<()> {
    let Some(first) = text.lines().next() else {
        return Ok(());
    };
    let reject = |message: String| {
        Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("refusing to resume {}: {message}", path.display()),
        ))
    };
    match crate::shard::parse_header_line(first) {
        Some((campaign, spec, recorded)) => {
            if shard.is_full() {
                return reject(format!(
                    "stream was written by shard {spec} of campaign {campaign:?} but this \
                     run is unsharded — rerun with --shard {spec}, merge the shards, or \
                     delete the stream"
                ));
            }
            if campaign != name || spec != shard || recorded != total {
                return reject(format!(
                    "stream header records campaign {campaign:?} shard {spec} over \
                     {recorded} scenario(s); this run is campaign {name:?} shard {shard} \
                     over {total} — rerun with the original spec or delete the stream"
                ));
            }
            Ok(())
        }
        None if !shard.is_full() && TrialRow::parse(first).is_ok() => reject(format!(
            "stream has no shard header (written by an unsharded run?) but this run is \
             shard {shard} — resume without --shard or delete the stream"
        )),
        None => Ok(()),
    }
}

/// The resume bookkeeping and the reloaded stream disagreed: a slot
/// that was counted as resumed has no row when it is laid back over
/// the scenario list. The layout loop in [`run_to_dir`] makes this
/// structurally unreachable, so hitting it means the in-memory state
/// was corrupted mid-run — surfaced as a typed `InvalidData` error
/// (downcastable from the `io::Error`) instead of a panic, with the
/// recovery spelled out.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResumeCorruption {
    /// Campaign whose resume pass broke.
    pub campaign: String,
    /// Enumeration index (within this shard's slice) of the bad slot.
    pub slot: usize,
    /// Label of the trial whose resumed row went missing.
    pub trial: String,
}

impl std::fmt::Display for ResumeCorruption {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "campaign `{}` resume state is corrupt: trial `{}` (slot {}) was counted as \
             resumed but its reloaded row is missing — delete the trial stream or rerun \
             without --resume",
            self.campaign, self.trial, self.slot
        )
    }
}

impl std::error::Error for ResumeCorruption {}

/// Wraps a [`ResumeCorruption`] as the `InvalidData` I/O error
/// [`run_to_dir`] propagates.
fn resume_corruption(campaign: &str, slot: usize, trial: &str) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        ResumeCorruption {
            campaign: campaign.to_string(),
            slot,
            trial: trial.to_string(),
        },
    )
}

/// Keys the trial rows of a (possibly partial) campaign JSONL for
/// resume. Header lines, truncated trailing lines, and any other
/// unparseable content are skipped rather than failing — an
/// interrupted run left them behind.
fn completed_rows(text: &str) -> BTreeMap<String, TrialRow> {
    let mut completed = BTreeMap::new();
    for line in text.lines() {
        if let Ok(row) = TrialRow::parse(line) {
            completed.insert(row.trial_key(), row);
        }
    }
    completed
}

/// Runs `grid` (the `config.shard` slice of it) on `executor`,
/// streaming trial rows to `{stem}_trials.jsonl` under `dir` in
/// enumeration order while the run executes.
///
/// With `config.resume`, an existing stream at that path is scanned
/// first: rows whose trial key **and seed** match a scheduled scenario
/// are reloaded instead of re-run, and the file is rewritten in full —
/// so the final artifact is byte-identical to a fresh run no matter
/// how many times the campaign was interrupted. Unsharded runs also
/// write the per-trial and per-cell CSVs; sharded runs write only
/// their JSONL (CSVs are re-derived by [`merge_files`]).
///
/// # Errors
///
/// Propagates I/O errors from the stream writes, and rejects
/// `config.resume` with `InvalidData` when the existing stream's shard
/// header does not match this run's campaign, `--shard I/N` spec, and
/// scenario total (resuming across a partition mismatch would silently
/// re-seed another shard's slice).
pub fn run_to_dir(
    name: &str,
    grid: &Grid,
    executor: Executor,
    dir: impl AsRef<Path>,
    config: RunConfig,
) -> io::Result<CampaignRun> {
    let dir = dir.as_ref();
    let all = grid.scenarios();
    let total = all.len();
    let scenarios = config.shard.select(&all);
    let stem = config.shard.file_stem(name);
    let jsonl_path = dir.join(format!("{stem}_trials.jsonl"));

    let completed = if config.resume {
        // One read serves both the header check and the row reload; a
        // missing stream simply means there is nothing to resume.
        let text = fs::read_to_string(&jsonl_path).unwrap_or_default();
        validate_resume_stream(&text, &jsonl_path, name, config.shard, total)?;
        completed_rows(&text)
    } else {
        BTreeMap::new()
    };
    let mut rows: Vec<Option<TrialRow>> = vec![None; scenarios.len()];
    let mut todo: Vec<Scenario> = Vec::new();
    let mut todo_pos: Vec<usize> = Vec::new();
    for (i, scenario) in scenarios.iter().enumerate() {
        match completed.get(&scenario.label()) {
            // A stale stream (changed base seed, edited grid) must not
            // satisfy resume: the seed ties the row to the scenario.
            Some(row) if row.seed == scenario.seed => rows[i] = Some(row.clone()),
            _ => {
                todo.push(scenario.clone());
                todo_pos.push(i);
            }
        }
    }
    let resumed = scenarios.len() - todo.len();

    let mut ticker = config
        .progress
        .then(|| ProgressTicker::new(name, &scenarios));
    let mut writer = JsonlWriter::create(&jsonl_path)?;
    if !config.shard.is_full() {
        writer.write_row(&config.shard.header_row(name, total))?;
    }
    // An interruption tears a stream at its tail, so reloaded rows
    // normally form a contiguous prefix: write it back (each row is
    // flushed) before executing anything, so a second interruption
    // never loses progress a first one already paid for.
    let prefix_end = todo_pos.first().copied().unwrap_or(scenarios.len());
    for (i, row) in rows[..prefix_end].iter().enumerate() {
        let row = row
            .as_ref()
            .ok_or_else(|| resume_corruption(name, i, &scenarios[i].label()))?;
        writer.write_row(&row.jsonl_row())?;
        if let Some(t) = ticker.as_mut() {
            t.record(row);
        }
    }
    writer.flush()?;
    // The sink interleaves any remaining reloaded rows with fresh
    // results so the file grows as a valid in-order prefix; I/O
    // failures are latched and re-raised after the pool drains.
    let mut write_err: Option<io::Error> = None;
    let mut cursor = prefix_end;
    let records = executor.map_streamed(&todo, Scenario::run, |j, record| {
        if write_err.is_some() {
            return;
        }
        let pos = todo_pos[j];
        let fresh = TrialRow::from_record(record);
        let result = (cursor..pos)
            .try_for_each(|k| {
                let row = rows[k]
                    .as_ref()
                    .ok_or_else(|| resume_corruption(name, k, &scenarios[k].label()))?;
                writer.write_row(&row.jsonl_row())?;
                if let Some(t) = ticker.as_mut() {
                    t.record(row);
                }
                Ok(())
            })
            .and_then(|()| writer.write_row(&fresh.jsonl_row()))
            // Per-trial flush: the live stream on disk is always a
            // whole-line prefix of the run, so a kill costs at most
            // the in-flight trial.
            .and_then(|()| writer.flush());
        match result {
            Ok(()) => {
                cursor = pos + 1;
                if let Some(t) = ticker.as_mut() {
                    t.record(&fresh);
                }
            }
            Err(e) => write_err = Some(e),
        }
    });
    let executed = records.len();
    for (j, record) in records.iter().enumerate() {
        rows[todo_pos[j]] = Some(TrialRow::from_record(record));
    }
    if let Some(e) = write_err {
        return Err(e);
    }
    let rows: Vec<TrialRow> = rows
        .into_iter()
        .enumerate()
        .map(|(i, row)| row.ok_or_else(|| resume_corruption(name, i, &scenarios[i].label())))
        .collect::<io::Result<_>>()?;
    for row in &rows[cursor..] {
        writer.write_row(&row.jsonl_row())?;
        if let Some(t) = ticker.as_mut() {
            t.record(row);
        }
    }
    writer.finish()?;
    if let Some(t) = ticker.as_ref() {
        t.finish();
    }

    let cells = summarize_rows(&rows);
    let mut paths = vec![jsonl_path];
    if config.shard.is_full() {
        paths.extend(write_trial_csvs(&rows, &cells, dir, &stem)?);
    }
    Ok(CampaignRun {
        name: name.to_string(),
        stem,
        rows,
        cells,
        executed,
        resumed,
        paths,
    })
}

/// Writes the per-trial and per-cell CSVs derived from `rows` under
/// `dir` as `{stem}_trials.csv` / `{stem}_cells.csv` — the one
/// derivation shared by unsharded runs, `merge_files`, and
/// `repro_all --merged`, so the artifacts those paths produce can
/// never drift apart. Returns the two paths.
///
/// # Errors
///
/// Propagates I/O errors from the writes.
pub fn write_trial_csvs(
    rows: &[TrialRow],
    cells: &[CellSummary],
    dir: impl AsRef<Path>,
    stem: &str,
) -> io::Result<[PathBuf; 2]> {
    let dir = dir.as_ref();
    let trials_path = dir.join(format!("{stem}_trials.csv"));
    rows_to_csv(rows).write_to(&trials_path)?;
    let cells_path = dir.join(format!("{stem}_cells.csv"));
    summaries_to_csv(cells).write_to(&cells_path)?;
    Ok([trials_path, cells_path])
}

/// Loads a complete (headerless, e.g. merged or unsharded) trial
/// stream back into rows.
///
/// # Errors
///
/// Returns an I/O error for unreadable files and `InvalidData` for any
/// line that is not a trial row — unlike resume's lenient scan, a
/// stream consumed as an artifact must be whole.
pub fn load_trials(path: impl AsRef<Path>) -> io::Result<Vec<TrialRow>> {
    let path = path.as_ref();
    let text = fs::read_to_string(path)?;
    text.lines()
        .enumerate()
        .map(|(i, line)| {
            TrialRow::parse(line).map_err(|message| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("{}:{}: {message}", path.display(), i + 1),
                )
            })
        })
        .collect()
}

/// A merged campaign: the reassembled stream plus its re-derived
/// artifacts.
#[derive(Debug, Clone)]
pub struct MergedCampaign {
    /// Campaign name recorded in the shard headers.
    pub name: String,
    /// The merged trial rows, in grid enumeration order.
    pub rows: Vec<TrialRow>,
    /// Per-cell aggregates re-derived from the merged stream.
    pub cells: Vec<CellSummary>,
    /// Files written.
    pub paths: Vec<PathBuf>,
}

/// Merges N sharded trial streams back into the unsharded artifacts:
/// `{name}_trials.jsonl`, `{name}_trials.csv`, and `{name}_cells.csv`
/// under `out_dir`, byte-identical to what an unsharded run writes.
///
/// # Errors
///
/// Returns [`MergeError`] when the inputs are not exactly the N shards
/// of one campaign run (see [`merge_streams`]), or wraps the I/O error
/// if reading an input or writing an artifact fails.
pub fn merge_files<P: AsRef<Path>>(
    out_dir: impl AsRef<Path>,
    inputs: &[P],
) -> Result<MergedCampaign, MergeError> {
    let streams = inputs
        .iter()
        .map(ShardStream::read)
        .collect::<Result<Vec<_>, _>>()?;
    let (name, rows) = merge_streams(streams)?;
    let out_dir = out_dir.as_ref();
    fn io_err(path: &Path) -> impl Fn(io::Error) -> MergeError + '_ {
        move |e| MergeError::Io(format!("{}: {e}", path.display()))
    }
    let jsonl_path = out_dir.join(format!("{name}_trials.jsonl"));
    (|| -> io::Result<()> {
        let mut writer = JsonlWriter::create(&jsonl_path)?;
        for row in &rows {
            writer.write_row(&row.jsonl_row())?;
        }
        writer.finish()?;
        Ok(())
    })()
    .map_err(io_err(&jsonl_path))?;
    let cells = summarize_rows(&rows);
    let [trials_path, cells_path] =
        write_trial_csvs(&rows, &cells, out_dir, &name).map_err(io_err(out_dir))?;
    Ok(MergedCampaign {
        name,
        rows,
        cells,
        paths: vec![jsonl_path, trials_path, cells_path],
    })
}

/// Client-vs-server sweep: all three channels across the client
/// platforms and the §6.4 server extrapolation, quiet vs low noise.
/// Answers "do the channels carry over beyond the paper's parts?".
pub fn client_vs_server(quick: bool) -> Grid {
    Grid::new()
        .platforms(vec![
            PlatformId::CannonLake,
            PlatformId::CoffeeLake,
            PlatformId::SkylakeServer,
        ])
        .kinds(&[ChannelKind::Thread, ChannelKind::Smt, ChannelKind::Cores])
        .noises(vec![NoiseSpec::Quiet, NoiseSpec::Low])
        .payload_symbols(if quick { 8 } else { 40 })
        .calib_reps(if quick { 2 } else { 3 })
        .trials(if quick { 1 } else { 3 })
        .base_seed(0x00C1_1E57)
}

/// Noise-robustness sweep: the same-thread channel under interrupt and
/// context-switch storms across four orders of magnitude (Figure 14(a)
/// generalized to every rate × both event kinds at once).
pub fn noise_robustness(quick: bool) -> Grid {
    let mut noises = vec![NoiseSpec::Quiet];
    for rate in [10.0, 100.0, 1_000.0, 10_000.0] {
        noises.push(NoiseSpec::Interrupts(rate));
        noises.push(NoiseSpec::CtxSwitches(rate));
    }
    Grid::new()
        .kinds(&[ChannelKind::Thread])
        .noises(noises)
        .payload_symbols(if quick { 40 } else { 250 })
        .calib_reps(3)
        .trials(if quick { 1 } else { 3 })
        .base_seed(0x0014_015E)
}

/// Mitigation-coverage sweep: every §7 mitigation set (including the
/// all-three stack) against every channel — Table 1 generalized to
/// combined defenses.
pub fn mitigation_coverage(quick: bool) -> Grid {
    Grid::new()
        .kinds(&[ChannelKind::Thread, ChannelKind::Smt, ChannelKind::Cores])
        .mitigation_sets(vec![
            vec![],
            vec![Mitigation::PerCoreVr],
            vec![Mitigation::ImprovedThrottling],
            vec![Mitigation::SecureMode],
            vec![
                Mitigation::PerCoreVr,
                Mitigation::ImprovedThrottling,
                Mitigation::SecureMode,
            ],
        ])
        .payload_symbols(if quick { 24 } else { 60 })
        .calib_reps(if quick { 2 } else { 3 })
        .base_seed(0x7AB_1E1)
}

/// Modulation-capacity sweep: the 4/6/7-level alphabets over the
/// same-thread and cross-core channels, on a client part and the §6.4
/// server extrapolation. Answers the ROADMAP question "how many
/// bits/transaction survive beyond the paper's 2-bit modulation?".
pub fn modulation_capacity(quick: bool) -> Grid {
    let mut channels = Vec::new();
    for kind in [ChannelKind::Thread, ChannelKind::Cores] {
        for alpha in [
            AlphabetSpec::Paper4,
            AlphabetSpec::Phi6,
            AlphabetSpec::Full7,
        ] {
            channels.push(ChannelSelect::MultiLevel(kind, alpha));
        }
    }
    Grid::new()
        .platforms(vec![PlatformId::CannonLake, PlatformId::SkylakeServer])
        .channels(channels)
        .payload_symbols(if quick { 24 } else { 80 })
        .calib_reps(if quick { 2 } else { 3 })
        .trials(if quick { 1 } else { 3 })
        .base_seed(0x0A1F_ABE7)
}

/// Receiver-calibration sweep: the cross-core channel decoded by the
/// legacy fixed-window receiver, the platform-calibrated adaptive
/// receiver, and an explicit window×votes grid, on the client parts
/// against the §6.4 server extrapolation. Documents the fix for the
/// ROADMAP outlier: the 0.9 mΩ server load-line compresses cross-core
/// separation into the jitter floor, a single fixed-window sample
/// decodes at BER ≈ 0.19, and repeat-and-vote brings the cell below
/// 0.05 while every client cell is already clean at one sample (and
/// stays bit-identical under the calibrated default).
pub fn receiver_calibration(quick: bool) -> Grid {
    let mut receivers = vec![ReceiverSpec::Legacy, ReceiverSpec::Calibrated];
    for window_scale in [1.0, 2.0] {
        for votes in [3, 5] {
            receivers.push(ReceiverSpec::Fixed {
                window_scale,
                votes,
            });
        }
    }
    Grid::new()
        .platforms(vec![
            PlatformId::CannonLake,
            PlatformId::CoffeeLake,
            PlatformId::SkylakeServer,
        ])
        .kinds(&[ChannelKind::Cores])
        .receivers(receivers)
        .payload_symbols(if quick { 24 } else { 60 })
        .calib_reps(if quick { 2 } else { 3 })
        .trials(if quick { 1 } else { 3 })
        .base_seed(0x00AD_A003)
}

/// Every named campaign, for CLI dispatch: `(name, grid builder)`.
pub fn catalog(quick: bool) -> Vec<(&'static str, Grid)> {
    vec![
        ("client_vs_server", client_vs_server(quick)),
        ("noise_robustness", noise_robustness(quick)),
        ("mitigation_coverage", mitigation_coverage(quick)),
        ("modulation_capacity", modulation_capacity(quick)),
        ("receiver_calibration", receiver_calibration(quick)),
    ]
}

/// Convenience used by the figure harnesses: a single-platform grid
/// over explicit channel selections.
pub fn channel_shootout(
    channels: Vec<ChannelSelect>,
    payload_symbols: usize,
    base_seed: u64,
) -> Grid {
    Grid::new()
        .channels(channels)
        .payload_symbols(payload_symbols)
        .calib_reps(3)
        .base_seed(base_seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_names_are_unique() {
        let cat = catalog(true);
        assert_eq!(cat.len(), 5);
        let mut names: Vec<&str> = cat.iter().map(|(n, _)| *n).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 5);
    }

    #[test]
    fn quick_campaigns_have_expected_shape() {
        // client_vs_server: 3 platforms × 3 kinds × 2 noises, minus the
        // SMT hole on Coffee Lake (no SMT) → 16 scenarios.
        assert_eq!(client_vs_server(true).cardinality(), 18);
        assert_eq!(client_vs_server(true).scenarios().len(), 16);
        // noise_robustness: 1 × 9 noises.
        assert_eq!(noise_robustness(true).scenarios().len(), 9);
        // mitigation_coverage: 3 kinds × 5 sets.
        assert_eq!(mitigation_coverage(true).scenarios().len(), 15);
        // modulation_capacity: 2 platforms × 2 kinds × 3 alphabets.
        assert_eq!(modulation_capacity(true).scenarios().len(), 12);
        // receiver_calibration: 3 platforms × 6 receivers × 1 kind.
        assert_eq!(receiver_calibration(true).scenarios().len(), 18);
    }

    #[test]
    fn resume_corruption_is_typed_and_actionable() {
        let err = resume_corruption("unit", 3, "cannon_lake/IccThreadCovert/quiet/t00");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        let msg = err.to_string();
        assert!(msg.contains("slot 3"), "{msg}");
        assert!(msg.contains("rerun without --resume"), "{msg}");
        let inner = err
            .into_inner()
            .expect("carries a source")
            .downcast::<ResumeCorruption>()
            .expect("downcasts to the typed error");
        assert_eq!(inner.campaign, "unit");
        assert_eq!(inner.slot, 3);
    }

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("ichannels_lab_{tag}"));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn small_grid() -> Grid {
        Grid::new()
            .kinds(&[ChannelKind::Thread, ChannelKind::Cores])
            .noises(vec![NoiseSpec::Quiet, NoiseSpec::Low])
            .trials(2)
            .payload_symbols(4)
    }

    #[test]
    fn run_to_dir_matches_the_in_memory_report() {
        let dir = temp_dir("run_to_dir");
        let grid = small_grid();
        let run_out =
            run_to_dir("unit", &grid, Executor::new(3), &dir, RunConfig::default()).unwrap();
        assert_eq!(run_out.executed, 8);
        assert_eq!(run_out.resumed, 0);
        assert_eq!(run_out.paths.len(), 3, "jsonl + trials csv + cells csv");
        let report = run("unit", &grid, Executor::serial());
        let report_dir = temp_dir("run_to_dir_report");
        let report_paths = report.write_to(&report_dir).unwrap();
        for (a, b) in run_out.paths.iter().zip(&report_paths) {
            assert_eq!(
                std::fs::read_to_string(a).unwrap(),
                std::fs::read_to_string(b).unwrap(),
                "{} diverges from {}",
                a.display(),
                b.display()
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_dir_all(&report_dir);
    }

    #[test]
    fn sharded_runs_merge_back_byte_identical() {
        let dir = temp_dir("shard_merge");
        let grid = small_grid();
        let full = run_to_dir(
            "unit",
            &grid,
            Executor::serial(),
            &dir,
            RunConfig::default(),
        )
        .unwrap();
        let mut shard_paths = Vec::new();
        for index in 0..3 {
            let config = RunConfig {
                shard: ShardSpec::new(index, 3).unwrap(),
                ..RunConfig::default()
            };
            let shard_run = run_to_dir("unit", &grid, Executor::new(2), &dir, config).unwrap();
            assert_eq!(shard_run.paths.len(), 1, "shards write JSONL only");
            // The shard stream leads with its header line.
            let text = std::fs::read_to_string(&shard_run.paths[0]).unwrap();
            assert!(text.starts_with("{\"shard_campaign\":\"unit\""), "{text}");
            shard_paths.push(shard_run.paths[0].clone());
        }
        let merged_dir = temp_dir("shard_merge_out");
        let merged = merge_files(&merged_dir, &shard_paths).unwrap();
        assert_eq!(merged.name, "unit");
        assert_eq!(merged.rows.len(), full.rows.len());
        for (merged_path, full_path) in merged.paths.iter().zip(&full.paths) {
            assert_eq!(
                std::fs::read_to_string(merged_path).unwrap(),
                std::fs::read_to_string(full_path).unwrap(),
                "{} diverges",
                merged_path.display()
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_dir_all(&merged_dir);
    }

    #[test]
    fn resume_skips_completed_trials_and_rewrites_identically() {
        let dir = temp_dir("resume");
        let grid = small_grid();
        let fresh = run_to_dir(
            "unit",
            &grid,
            Executor::serial(),
            &dir,
            RunConfig::default(),
        )
        .unwrap();
        let jsonl = &fresh.paths[0];
        let pristine = std::fs::read_to_string(jsonl).unwrap();
        // Simulate an interruption: keep 3 complete rows and one
        // truncated line (the classic torn tail of a killed process).
        let lines: Vec<&str> = pristine.lines().collect();
        let torn = format!(
            "{}\n{}\n",
            lines[..3].join("\n"),
            &lines[3][..lines[3].len() / 2]
        );
        std::fs::write(jsonl, &torn).unwrap();
        let resume = RunConfig {
            resume: true,
            ..RunConfig::default()
        };
        let resumed = run_to_dir("unit", &grid, Executor::new(2), &dir, resume).unwrap();
        assert_eq!(resumed.resumed, 3, "three intact rows reloaded");
        assert_eq!(resumed.executed, 5, "torn + missing trials re-run");
        assert_eq!(std::fs::read_to_string(jsonl).unwrap(), pristine);
        // A second resume of the complete stream re-runs nothing.
        let again = run_to_dir("unit", &grid, Executor::serial(), &dir, resume).unwrap();
        assert_eq!(again.resumed, 8);
        assert_eq!(again.executed, 0);
        assert_eq!(std::fs::read_to_string(jsonl).unwrap(), pristine);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_ignores_stale_seeds() {
        let dir = temp_dir("resume_stale");
        let grid = small_grid();
        run_to_dir(
            "unit",
            &grid,
            Executor::serial(),
            &dir,
            RunConfig::default(),
        )
        .unwrap();
        // A different base seed invalidates every cached row.
        let reseeded = small_grid().base_seed(0xDEAD_BEEF);
        let resume = RunConfig {
            resume: true,
            ..RunConfig::default()
        };
        let rerun = run_to_dir("unit", &reseeded, Executor::serial(), &dir, resume).unwrap();
        assert_eq!(rerun.resumed, 0, "stale rows must not satisfy resume");
        assert_eq!(rerun.executed, 8);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn report_files_round_trip() {
        let grid = Grid::new().payload_symbols(4);
        let report = run("unit", &grid, Executor::serial());
        assert_eq!(report.records.len(), 1);
        assert_eq!(report.cells.len(), 1);
        let dir = std::env::temp_dir().join("ichannels_lab_report_test");
        let paths = report.write_to(&dir).unwrap();
        assert_eq!(paths.len(), 3);
        for p in &paths {
            assert!(p.exists(), "{} missing", p.display());
        }
        let jsonl = std::fs::read_to_string(&paths[0]).unwrap();
        assert_eq!(jsonl.lines().count(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

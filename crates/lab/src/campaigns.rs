//! Ready-made campaigns: named grids answering the evaluation questions
//! the ROADMAP keeps asking, plus the run-and-export driver.

use std::io;
use std::path::{Path, PathBuf};

use ichannels::channel::ChannelKind;
use ichannels::mitigations::Mitigation;
use ichannels_meter::export::JsonlWriter;

use crate::exec::Executor;
use crate::grid::Grid;
use crate::report::{records_to_csv, summaries_to_csv, summarize_cells, CellSummary, TrialRecord};
use crate::scenario::{AlphabetSpec, ChannelSelect, NoiseSpec, PlatformId};

/// A completed campaign: raw trials plus per-cell aggregates.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// Campaign name (used for export file names).
    pub name: String,
    /// Raw trial records, in grid enumeration order.
    pub records: Vec<TrialRecord>,
    /// Per-cell aggregates, sorted by cell key.
    pub cells: Vec<CellSummary>,
}

impl CampaignReport {
    /// Writes `{name}_trials.jsonl`, `{name}_trials.csv`, and
    /// `{name}_cells.csv` under `dir`; returns the paths.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn write_to(&self, dir: impl AsRef<Path>) -> io::Result<Vec<PathBuf>> {
        let dir = dir.as_ref();
        let jsonl_path = dir.join(format!("{}_trials.jsonl", self.name));
        let mut writer = JsonlWriter::create(&jsonl_path)?;
        for record in &self.records {
            writer.write_row(&record.jsonl_row())?;
        }
        writer.finish()?;
        let trials_path = dir.join(format!("{}_trials.csv", self.name));
        records_to_csv(&self.records).write_to(&trials_path)?;
        let cells_path = dir.join(format!("{}_cells.csv", self.name));
        summaries_to_csv(&self.cells).write_to(&cells_path)?;
        Ok(vec![jsonl_path, trials_path, cells_path])
    }
}

/// Runs a grid on `executor` and aggregates it into a report.
pub fn run(name: &str, grid: &Grid, executor: Executor) -> CampaignReport {
    let records = executor.run(&grid.scenarios());
    let cells = summarize_cells(&records);
    CampaignReport {
        name: name.to_string(),
        records,
        cells,
    }
}

/// Client-vs-server sweep: all three channels across the client
/// platforms and the §6.4 server extrapolation, quiet vs low noise.
/// Answers "do the channels carry over beyond the paper's parts?".
pub fn client_vs_server(quick: bool) -> Grid {
    Grid::new()
        .platforms(vec![
            PlatformId::CannonLake,
            PlatformId::CoffeeLake,
            PlatformId::SkylakeServer,
        ])
        .kinds(&[ChannelKind::Thread, ChannelKind::Smt, ChannelKind::Cores])
        .noises(vec![NoiseSpec::Quiet, NoiseSpec::Low])
        .payload_symbols(if quick { 8 } else { 40 })
        .calib_reps(if quick { 2 } else { 3 })
        .trials(if quick { 1 } else { 3 })
        .base_seed(0x00C1_1E57)
}

/// Noise-robustness sweep: the same-thread channel under interrupt and
/// context-switch storms across four orders of magnitude (Figure 14(a)
/// generalized to every rate × both event kinds at once).
pub fn noise_robustness(quick: bool) -> Grid {
    let mut noises = vec![NoiseSpec::Quiet];
    for rate in [10.0, 100.0, 1_000.0, 10_000.0] {
        noises.push(NoiseSpec::Interrupts(rate));
        noises.push(NoiseSpec::CtxSwitches(rate));
    }
    Grid::new()
        .kinds(&[ChannelKind::Thread])
        .noises(noises)
        .payload_symbols(if quick { 40 } else { 250 })
        .calib_reps(3)
        .trials(if quick { 1 } else { 3 })
        .base_seed(0x0014_015E)
}

/// Mitigation-coverage sweep: every §7 mitigation set (including the
/// all-three stack) against every channel — Table 1 generalized to
/// combined defenses.
pub fn mitigation_coverage(quick: bool) -> Grid {
    Grid::new()
        .kinds(&[ChannelKind::Thread, ChannelKind::Smt, ChannelKind::Cores])
        .mitigation_sets(vec![
            vec![],
            vec![Mitigation::PerCoreVr],
            vec![Mitigation::ImprovedThrottling],
            vec![Mitigation::SecureMode],
            vec![
                Mitigation::PerCoreVr,
                Mitigation::ImprovedThrottling,
                Mitigation::SecureMode,
            ],
        ])
        .payload_symbols(if quick { 24 } else { 60 })
        .calib_reps(if quick { 2 } else { 3 })
        .base_seed(0x7AB_1E1)
}

/// Modulation-capacity sweep: the 4/6/7-level alphabets over the
/// same-thread and cross-core channels, on a client part and the §6.4
/// server extrapolation. Answers the ROADMAP question "how many
/// bits/transaction survive beyond the paper's 2-bit modulation?".
pub fn modulation_capacity(quick: bool) -> Grid {
    let mut channels = Vec::new();
    for kind in [ChannelKind::Thread, ChannelKind::Cores] {
        for alpha in [
            AlphabetSpec::Paper4,
            AlphabetSpec::Phi6,
            AlphabetSpec::Full7,
        ] {
            channels.push(ChannelSelect::MultiLevel(kind, alpha));
        }
    }
    Grid::new()
        .platforms(vec![PlatformId::CannonLake, PlatformId::SkylakeServer])
        .channels(channels)
        .payload_symbols(if quick { 24 } else { 80 })
        .calib_reps(if quick { 2 } else { 3 })
        .trials(if quick { 1 } else { 3 })
        .base_seed(0x0A1F_ABE7)
}

/// Every named campaign, for CLI dispatch: `(name, grid builder)`.
pub fn catalog(quick: bool) -> Vec<(&'static str, Grid)> {
    vec![
        ("client_vs_server", client_vs_server(quick)),
        ("noise_robustness", noise_robustness(quick)),
        ("mitigation_coverage", mitigation_coverage(quick)),
        ("modulation_capacity", modulation_capacity(quick)),
    ]
}

/// Convenience used by the figure harnesses: a single-platform grid
/// over explicit channel selections.
pub fn channel_shootout(
    channels: Vec<ChannelSelect>,
    payload_symbols: usize,
    base_seed: u64,
) -> Grid {
    Grid::new()
        .channels(channels)
        .payload_symbols(payload_symbols)
        .calib_reps(3)
        .base_seed(base_seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_names_are_unique() {
        let cat = catalog(true);
        assert_eq!(cat.len(), 4);
        let mut names: Vec<&str> = cat.iter().map(|(n, _)| *n).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 4);
    }

    #[test]
    fn quick_campaigns_have_expected_shape() {
        // client_vs_server: 3 platforms × 3 kinds × 2 noises, minus the
        // SMT hole on Coffee Lake (no SMT) → 16 scenarios.
        assert_eq!(client_vs_server(true).cardinality(), 18);
        assert_eq!(client_vs_server(true).scenarios().len(), 16);
        // noise_robustness: 1 × 9 noises.
        assert_eq!(noise_robustness(true).scenarios().len(), 9);
        // mitigation_coverage: 3 kinds × 5 sets.
        assert_eq!(mitigation_coverage(true).scenarios().len(), 15);
        // modulation_capacity: 2 platforms × 2 kinds × 3 alphabets.
        assert_eq!(modulation_capacity(true).scenarios().len(), 12);
    }

    #[test]
    fn report_files_round_trip() {
        let grid = Grid::new().payload_symbols(4);
        let report = run("unit", &grid, Executor::serial());
        assert_eq!(report.records.len(), 1);
        assert_eq!(report.cells.len(), 1);
        let dir = std::env::temp_dir().join("ichannels_lab_report_test");
        let paths = report.write_to(&dir).unwrap();
        assert_eq!(paths.len(), 3);
        for p in &paths {
            assert!(p.exists(), "{} missing", p.display());
        }
        let jsonl = std::fs::read_to_string(&paths[0]).unwrap();
        assert_eq!(jsonl.lines().count(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

//! The sweepable axes of a [`super::Scenario`]: platforms, channel
//! selections, noise, apps, payloads, design knobs, and receivers —
//! each a small value type with a stable cell-key label.

use ichannels::channel::{ChannelConfig, ChannelKind, ReceiverCalibration, ReceiverMode};
use ichannels::extended::LevelAlphabet;
use ichannels::mitigations::Mitigation;
use ichannels_soc::config::PlatformSpec;
use ichannels_soc::noise::NoiseConfig;
use ichannels_uarch::time::SimTime;

use super::probe::ProbeKind;

/// A catalog platform, by value-semantic id (the full [`PlatformSpec`]
/// is materialized per trial).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PlatformId {
    /// Cannon Lake i3-8121U — 2C/4T mobile, the paper's SMT platform.
    CannonLake,
    /// Coffee Lake i7-9700K — 8C/8T desktop.
    CoffeeLake,
    /// Haswell i7-4770K — 4C/8T desktop, FIVR, no AVX power gate.
    Haswell,
    /// Skylake-SP Xeon — the §6.4 28C/56T server extrapolation.
    SkylakeServer,
}

impl PlatformId {
    /// Every platform in the catalog.
    pub const ALL: [PlatformId; 4] = [
        PlatformId::CannonLake,
        PlatformId::CoffeeLake,
        PlatformId::Haswell,
        PlatformId::SkylakeServer,
    ];

    /// The client platforms (paper §5.1).
    pub const CLIENTS: [PlatformId; 3] = [
        PlatformId::CannonLake,
        PlatformId::CoffeeLake,
        PlatformId::Haswell,
    ];

    /// Materializes the platform description.
    pub fn spec(self) -> PlatformSpec {
        match self {
            PlatformId::CannonLake => PlatformSpec::cannon_lake(),
            PlatformId::CoffeeLake => PlatformSpec::coffee_lake(),
            PlatformId::Haswell => PlatformSpec::haswell(),
            PlatformId::SkylakeServer => PlatformSpec::skylake_server(),
        }
    }

    /// Short label used in cell keys and export rows.
    pub const fn label(self) -> &'static str {
        match self {
            PlatformId::CannonLake => "cannon_lake",
            PlatformId::CoffeeLake => "coffee_lake",
            PlatformId::Haswell => "haswell",
            PlatformId::SkylakeServer => "skylake_server",
        }
    }

    /// Default pinned characterization frequency (GHz) — the paper pins
    /// Cannon Lake at 1.4 GHz; the others are swept at 2.0 GHz, their
    /// shared low-noise operating point.
    pub const fn default_freq_ghz(self) -> f64 {
        match self {
            PlatformId::CannonLake => 1.4,
            _ => 2.0,
        }
    }
}

/// The sender's level alphabet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AlphabetSpec {
    /// The paper's four PHI levels (2 bits/transaction).
    Paper4,
    /// Six vector levels (≈2.58 bits/transaction raw).
    Phi6,
    /// All seven classes (≈2.81 bits/transaction raw).
    Full7,
}

impl AlphabetSpec {
    /// Materializes the alphabet.
    pub fn alphabet(self) -> LevelAlphabet {
        match self {
            AlphabetSpec::Paper4 => LevelAlphabet::paper4(),
            AlphabetSpec::Phi6 => LevelAlphabet::phi6(),
            AlphabetSpec::Full7 => LevelAlphabet::full7(),
        }
    }

    /// Number of levels.
    pub const fn levels(self) -> usize {
        match self {
            AlphabetSpec::Paper4 => 4,
            AlphabetSpec::Phi6 => 6,
            AlphabetSpec::Full7 => 7,
        }
    }

    /// Short label used in cell keys.
    pub const fn label(self) -> &'static str {
        match self {
            AlphabetSpec::Paper4 => "L4",
            AlphabetSpec::Phi6 => "L6",
            AlphabetSpec::Full7 => "L7",
        }
    }
}

/// A state-of-the-art comparison channel (Figure 12 / Table 2).
///
/// Baselines run their published default setup; the scenario's
/// platform, noise, and mitigation axes do not apply to them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BaselineKind {
    /// NetSpectre's single-level AVX gadget.
    NetSpectre,
    /// DFS covert channel (~20 b/s).
    DfsCovert,
    /// TurboCC (~61 b/s).
    TurboCc,
    /// POWERT (~122 b/s).
    Powert,
}

impl BaselineKind {
    /// Display name matching the paper.
    pub const fn name(self) -> &'static str {
        match self {
            BaselineKind::NetSpectre => "NetSpectre",
            BaselineKind::DfsCovert => "DFScovert",
            BaselineKind::TurboCc => "TurboCC",
            BaselineKind::Powert => "POWERT",
        }
    }
}

/// A design-parameter override — the ablation axis: which property of
/// the hardware gives the channel its capacity, and which knob a
/// defender would want to turn.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Knob {
    /// VR slew rate override (mV/µs) — faster regulators compress the
    /// TP levels (the §7 LDO argument, quantified).
    VrSlew(f64),
    /// License-hysteresis (reset-time) override (µs). The protocol
    /// adapts: the slot period becomes reset-time + 40 µs transaction.
    ResetTimeUs(f64),
    /// Receiver measurement-jitter sigma override (ns).
    MeasurementJitterNs(f64),
}

impl Knob {
    /// Label used in cell keys and export rows.
    pub fn label(self) -> String {
        match self {
            Knob::VrSlew(v) => format!("slew{v}"),
            Knob::ResetTimeUs(v) => format!("reset{v}"),
            Knob::MeasurementJitterNs(v) => format!("jitter{v}"),
        }
    }

    /// Applies the override to a channel configuration.
    pub fn apply(self, cfg: &mut ChannelConfig) {
        match self {
            Knob::VrSlew(v) => cfg.soc.platform.vr_model.slew_mv_per_us = v,
            Knob::ResetTimeUs(us) => {
                cfg.soc.platform.reset_time = SimTime::from_us(us);
                cfg.slot_period = SimTime::from_us(us + 40.0);
            }
            Knob::MeasurementJitterNs(ns) => {
                cfg.measurement_jitter = SimTime::from_ns(ns);
            }
        }
    }
}

/// The receiver a trial decodes with — the `receiver` Grid axis.
///
/// The default ([`ReceiverSpec::Calibrated`]) is the platform-
/// calibrated adaptive receiver and adds **no** cell-key segment, so
/// campaigns that do not sweep the receiver keep their PR-1/2 cell
/// keys and seeds; off-default receivers append an `rx-…` segment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ReceiverSpec {
    /// Platform-calibrated adaptive receiver
    /// ([`ReceiverCalibration::for_channel`] — identity tuning on every
    /// client rail, windowed repeat-and-vote on the compressed server
    /// rail).
    Calibrated,
    /// The fixed single-sample receiver (pre-calibration behavior, the
    /// A/B baseline).
    Legacy,
    /// An explicit window×votes override (receiver-calibration sweeps).
    Fixed {
        /// Integration-window multiplier.
        window_scale: f64,
        /// Repeat-and-vote transactions per symbol.
        votes: u32,
    },
}

impl ReceiverSpec {
    /// True for the default axis value (no cell-key segment).
    pub const fn is_default(self) -> bool {
        matches!(self, ReceiverSpec::Calibrated)
    }

    /// Label used in cell keys (off-default values only — cell keys
    /// never include the `Calibrated` arm's `rx-cal`, which exists for
    /// display purposes; the default receiver adds no key segment by
    /// the seed-stability rule).
    pub fn label(self) -> String {
        match self {
            ReceiverSpec::Calibrated => "rx-cal".to_string(),
            ReceiverSpec::Legacy => "rx-legacy".to_string(),
            ReceiverSpec::Fixed {
                window_scale,
                votes,
            } => format!("rx-w{window_scale}v{votes}"),
        }
    }

    /// The core-channel receiver mode this axis value selects.
    pub fn mode(self) -> ReceiverMode {
        match self {
            ReceiverSpec::Calibrated => ReceiverMode::Calibrated,
            ReceiverSpec::Legacy => ReceiverMode::Legacy,
            ReceiverSpec::Fixed {
                window_scale,
                votes,
            } => ReceiverMode::Fixed(ReceiverCalibration {
                window_scale,
                votes,
            }),
        }
    }
}

/// Which channel a scenario drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ChannelSelect {
    /// One of the three IChannels with the paper's 4-level alphabet.
    Icc(ChannelKind),
    /// An IChannel generalized to a wider level alphabet.
    MultiLevel(ChannelKind, AlphabetSpec),
    /// A state-of-the-art baseline (fixed published setup).
    Baseline(BaselineKind),
    /// A direct micro-architectural measurement (no symbol stream).
    Probe(ProbeKind),
}

impl ChannelSelect {
    /// Label used in cell keys and export rows.
    pub fn label(self) -> String {
        match self {
            ChannelSelect::Icc(kind) => kind.name().to_string(),
            ChannelSelect::MultiLevel(kind, alpha) => {
                format!("{}-{}", kind.name(), alpha.label())
            }
            ChannelSelect::Baseline(b) => b.name().to_string(),
            ChannelSelect::Probe(p) => p.label(),
        }
    }
}

/// OS-noise configuration of a scenario.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum NoiseSpec {
    /// No OS noise.
    Quiet,
    /// The paper's low-noise client system (§6.3).
    Low,
    /// A highly noisy system (thousands of events/s).
    High,
    /// Interrupts only, at the given rate (Figure 14(a)).
    Interrupts(f64),
    /// Context switches only, at the given rate (Figure 14(a)).
    CtxSwitches(f64),
}

impl NoiseSpec {
    /// Materializes the noise configuration.
    pub fn config(self) -> NoiseConfig {
        match self {
            NoiseSpec::Quiet => NoiseConfig::quiet(),
            NoiseSpec::Low => NoiseConfig::low(),
            NoiseSpec::High => NoiseConfig::high(),
            NoiseSpec::Interrupts(rate) => NoiseConfig::interrupts_only(rate),
            NoiseSpec::CtxSwitches(rate) => NoiseConfig::ctx_switches_only(rate),
        }
    }

    /// Label used in cell keys and export rows.
    pub fn label(self) -> String {
        match self {
            NoiseSpec::Quiet => "quiet".to_string(),
            NoiseSpec::Low => "low".to_string(),
            NoiseSpec::High => "high".to_string(),
            NoiseSpec::Interrupts(rate) => format!("irq{rate}"),
            NoiseSpec::CtxSwitches(rate) => format!("ctx{rate}"),
        }
    }
}

/// What a concurrent interfering application executes (§6.3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AppKind {
    /// Random PHIs drawn from the four sender levels.
    RandomLevels,
    /// PHIs of one fixed level (the Figure 14(b) matrix rows).
    FixedLevel(u8),
    /// The 7-zip-like AVX2 compressor.
    SevenZip,
}

/// A concurrent application sharing the SoC with the channel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AppSpec {
    /// What the app executes.
    pub kind: AppKind,
    /// PHI injection rate (events/s); ignored by [`AppKind::SevenZip`].
    pub rate_hz: f64,
    /// Instructions per PHI burst; ignored by [`AppKind::SevenZip`].
    pub burst_insts: u64,
}

impl AppSpec {
    /// Label used in cell keys and export rows.
    pub fn label(self) -> String {
        match self.kind {
            AppKind::RandomLevels => format!("phi{}", self.rate_hz),
            AppKind::FixedLevel(level) => format!("phiL{}@{}", level, self.rate_hz),
            AppKind::SevenZip => "7zip".to_string(),
        }
    }
}

/// The symbol stream a trial transmits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PayloadSpec {
    /// Uniform random symbols (seeded per trial).
    Random,
    /// A constant stream of one symbol (Figure 14(b) cells).
    Constant(u8),
}

impl PayloadSpec {
    /// Label used in cell keys and export rows.
    pub fn label(self) -> String {
        match self {
            PayloadSpec::Random => "random".to_string(),
            PayloadSpec::Constant(v) => format!("const{v}"),
        }
    }
}

/// Renders a mitigation set as a stable label (`"none"` when empty).
pub fn mitigations_label(mitigations: &[Mitigation]) -> String {
    if mitigations.is_empty() {
        return "none".to_string();
    }
    mitigations
        .iter()
        .map(|m| match m {
            Mitigation::PerCoreVr => "per-core-vr",
            Mitigation::ImprovedThrottling => "improved-throttling",
            Mitigation::SecureMode => "secure-mode",
        })
        .collect::<Vec<_>>()
        .join("+")
}

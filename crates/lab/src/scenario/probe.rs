//! Direct micro-architectural measurements ([`ProbeKind`]): the
//! characterization figures (§5) expressed as engine cells, executed
//! through the shared [`TrialContext`].

use ichannels::channel::{ChannelError, ChannelKind, IChannel};
use ichannels::symbols::Symbol;
use ichannels_pdn::current::CoreActivity;
use ichannels_soc::config::{PlatformSpec, SocConfig};
use ichannels_soc::sim::Soc;
use ichannels_uarch::idq::{Idq, SmtId, ThreadDemand};
use ichannels_uarch::ipc::{nominal_ipc, THROTTLE_BLOCKED_FRACTION};
use ichannels_uarch::isa::InstClass;
use ichannels_uarch::time::{Freq, SimTime};
use ichannels_workload::loops::{instructions_for_duration, MeasuredLoop, PrecededLoop, Recorder};

use super::context::TrialContext;
use super::{mix, PayloadSpec, PlatformId, Scenario};
use crate::report::TrialMetrics;

/// Condition of an IDQ undelivered-slots probe (Figure 11): what the
/// cycle-level IDQ model executes and which hardware thread is observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IdqCondition {
    /// Throttled Heavy256 iteration, observed on the issuing thread.
    Throttled,
    /// Unthrottled iteration, observed on the issuing thread.
    Unthrottled,
    /// Throttled iteration, observed from the scalar SMT sibling.
    SmtSibling,
}

impl IdqCondition {
    /// The three Figure 11 conditions.
    pub const ALL: [IdqCondition; 3] = [
        IdqCondition::Throttled,
        IdqCondition::Unthrottled,
        IdqCondition::SmtSibling,
    ];

    /// Short label used in cell keys.
    pub const fn label(self) -> &'static str {
        match self {
            IdqCondition::Throttled => "idq-throttled",
            IdqCondition::Unthrottled => "idq-unthrottled",
            IdqCondition::SmtSibling => "idq-sibling",
        }
    }
}

/// Cycles per IDQ probe window (Figure 11's measurement window).
pub const IDQ_PROBE_WINDOW_CYCLES: u64 = 1_000;

/// A direct micro-architectural measurement — no symbol stream, the
/// characterization figures (§5) expressed as engine cells. The
/// measurement lands in [`crate::report::TrialMetrics::probe_value`]
/// (and `probe_aux` where a probe defines a second output).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProbeKind {
    /// Throttling period (µs) of a `class` loop running on `cores`
    /// cores concurrently (Figures 8(a), 10(a)).
    Tp {
        /// Instruction class of the measured loop.
        class: InstClass,
        /// Number of cores running the loop concurrently.
        cores: u8,
    },
    /// TP (µs) of a Heavy512 loop preceded by a `prev` loop
    /// (Figure 10(b)).
    PrecededTp {
        /// The class executed immediately before the measured loop.
        prev: InstClass,
    },
    /// Duration (µs) of back-to-back Heavy256 iteration `iter` of three
    /// — the AVX power-gate wake experiment (Figure 8(b,c)).
    GateIteration {
        /// Which of the three iterations is reported (0, 1, or 2).
        iter: u8,
    },
    /// Normalized IDQ undelivered slots under `IdqCondition`
    /// (Figure 11).
    Idq(IdqCondition),
    /// Receiver-measured duration (TSC cycles) of one transmitted
    /// sender level over the same-thread channel (Figure 13).
    LevelDuration {
        /// The transmitted symbol value (0..4).
        level: u8,
    },
    /// Projected (unprotected) operating point: Vcc (mV) in
    /// `probe_value`, Icc (A) in `probe_aux` (Figure 7(a)).
    OperatingPoint {
        /// Instruction class executed on the active cores.
        class: InstClass,
        /// Projected core frequency in MHz (exact, not P-state-snapped).
        freq_mhz: u32,
        /// Number of active cores.
        cores: u8,
    },
}

impl ProbeKind {
    /// Label used in cell keys and export rows.
    pub fn label(self) -> String {
        match self {
            ProbeKind::Tp { class, cores } => format!("tp-{class}-c{cores}"),
            ProbeKind::PrecededTp { prev } => format!("prec-{prev}"),
            ProbeKind::GateIteration { iter } => format!("gate-i{iter}"),
            ProbeKind::Idq(cond) => cond.label().to_string(),
            ProbeKind::LevelDuration { level } => format!("dwell{level}"),
            ProbeKind::OperatingPoint {
                class,
                freq_mhz,
                cores,
            } => format!("op-{class}-{freq_mhz}MHz-c{cores}"),
        }
    }
}

/// Converts a measured loop-duration inflation into a throttling
/// period: during the TP the loop retires at 1/4 rate, so the inflation
/// is `TP · 3/4` (provided the loop outlasts the TP) and
/// `TP = inflation / (3/4)`.
pub fn inflation_to_tp_us(measured_us: f64, base_us: f64) -> f64 {
    (measured_us - base_us).max(0.0) / THROTTLE_BLOCKED_FRACTION
}

impl Scenario {
    /// Probes measure the machine directly: there is no symbol stream,
    /// no interfering app, no mitigation stack and no design knob, so
    /// those axes must sit at their defaults — otherwise a row would
    /// carry an axis label that never applied to the measurement.
    pub(super) fn probe_supported(&self, probe: ProbeKind) -> bool {
        if self.app.is_some()
            || self.knob.is_some()
            || self.payload != PayloadSpec::Random
            || !self.mitigations.is_empty()
            || !self.receiver.is_default()
        {
            return false;
        }
        let spec = self.platform.spec();
        match probe {
            ProbeKind::Tp { cores, .. } => cores >= 1 && (cores as usize) <= spec.n_cores,
            ProbeKind::PrecededTp { .. } => true,
            ProbeKind::GateIteration { iter } => iter < 3,
            // The IDQ model is platform-, noise-, and frequency-
            // independent (it counts cycles, not time); restrict to the
            // canonical setup so labels stay honest.
            ProbeKind::Idq(_) => {
                self.platform == PlatformId::CannonLake
                    && self.noise == super::NoiseSpec::Quiet
                    && self.freq_ghz.is_none()
            }
            ProbeKind::LevelDuration { level } => level < 4,
            // Operating points carry their own exact frequency, so the
            // grid's pinned-frequency axis must stay at its default.
            ProbeKind::OperatingPoint {
                freq_mhz, cores, ..
            } => {
                self.noise == super::NoiseSpec::Quiet
                    && self.freq_ghz.is_none()
                    && cores >= 1
                    && (cores as usize) <= spec.n_cores
                    && Freq::from_mhz(f64::from(freq_mhz)) <= spec.vf_curve.max_freq()
            }
        }
    }
}

/// Wraps a probe measurement pair into the metrics struct (all channel
/// metrics undefined).
fn probe_metrics(value: f64, aux: f64) -> TrialMetrics {
    TrialMetrics {
        probe_value: value,
        probe_aux: aux,
        ..TrialMetrics::undefined()
    }
}

/// The probe's pinned frequency: the scenario override (or platform
/// default) snapped down to a real P-state.
fn probe_freq(scenario: &Scenario, spec: &PlatformSpec) -> Freq {
    let ghz = scenario
        .freq_ghz
        .unwrap_or(scenario.platform.default_freq_ghz());
    spec.pstates.highest_not_above(Freq::from_ghz(ghz))
}

/// A pinned, noise-configured SoC for loop probes, seeded from the
/// trial seed.
fn probe_soc(scenario: &Scenario, spec: PlatformSpec, freq: Freq) -> Soc {
    let mut cfg = SocConfig::pinned(spec, freq).with_noise(scenario.noise.config());
    cfg.seed = mix(scenario.seed, 2);
    Soc::new(cfg)
}

/// Executes one probe measurement on the shared trial context.
pub(super) fn run_probe(
    ctx: &TrialContext<'_>,
    probe: ProbeKind,
) -> Result<TrialMetrics, ChannelError> {
    let scenario = ctx.scenario();
    match probe {
        ProbeKind::Tp { class, cores } => {
            let spec = scenario.platform.spec();
            let freq = probe_freq(scenario, &spec);
            let mut soc = probe_soc(scenario, spec, freq);
            // Loop long enough to outlast any TP (≥ 60 µs of work).
            let insts = instructions_for_duration(class, freq, SimTime::from_us(60.0));
            let rec = Recorder::new();
            soc.spawn(
                0,
                0,
                Box::new(MeasuredLoop::once(class, insts, rec.clone())),
            );
            for core in 1..cores as usize {
                soc.spawn(
                    core,
                    0,
                    Box::new(MeasuredLoop::once(class, insts, Recorder::new())),
                );
            }
            soc.run_until_idle(SimTime::from_ms(5.0));
            let base_us = insts as f64 / nominal_ipc(class) / freq.as_hz() as f64 * 1e6;
            let tp = inflation_to_tp_us(rec.durations_us(soc.tsc())[0], base_us);
            Ok(probe_metrics(tp, f64::NAN))
        }
        ProbeKind::PrecededTp { prev } => {
            let spec = scenario.platform.spec();
            let freq = probe_freq(scenario, &spec);
            let mut soc = probe_soc(scenario, spec, freq);
            let main_insts =
                instructions_for_duration(InstClass::Heavy512, freq, SimTime::from_us(60.0));
            let prev_insts =
                instructions_for_duration(InstClass::Heavy256, freq, SimTime::from_us(15.0));
            let rec = Recorder::new();
            soc.spawn(
                0,
                0,
                Box::new(PrecededLoop::new(
                    prev,
                    prev_insts,
                    InstClass::Heavy512,
                    main_insts,
                    SimTime::from_us(30.0),
                    rec.clone(),
                )),
            );
            soc.run_until_idle(SimTime::from_ms(5.0));
            let base_us =
                main_insts as f64 / nominal_ipc(InstClass::Heavy512) / freq.as_hz() as f64 * 1e6;
            let tp = inflation_to_tp_us(rec.durations_us(soc.tsc())[0], base_us);
            Ok(probe_metrics(tp, f64::NAN))
        }
        ProbeKind::GateIteration { iter } => {
            let spec = scenario.platform.spec();
            let freq = probe_freq(scenario, &spec);
            let mut soc = probe_soc(scenario, spec, freq);
            // Three back-to-back 300-instruction VMULPD-class loops
            // (§5.4): only the first pays the power-gate wake.
            let rec = Recorder::new();
            soc.spawn(
                0,
                0,
                Box::new(MeasuredLoop::new(
                    InstClass::Heavy256,
                    300,
                    3,
                    SimTime::ZERO,
                    rec.clone(),
                )),
            );
            soc.run_until_idle(SimTime::from_ms(1.0));
            Ok(probe_metrics(
                rec.durations_us(soc.tsc())[iter as usize],
                f64::NAN,
            ))
        }
        ProbeKind::Idq(condition) => {
            let mut idq = Idq::new();
            let (throttled, sibling, observe) = match condition {
                IdqCondition::Throttled => (true, ThreadDemand::IDLE, SmtId::T0),
                IdqCondition::Unthrottled => (false, ThreadDemand::IDLE, SmtId::T0),
                IdqCondition::SmtSibling => {
                    (true, ThreadDemand::busy(InstClass::Scalar64), SmtId::T1)
                }
            };
            idq.set_throttled(throttled, Some(SmtId::T0));
            let frac = idq.run_normalized_undelivered(
                ThreadDemand::busy(InstClass::Heavy256),
                sibling,
                IDQ_PROBE_WINDOW_CYCLES,
                observe,
            );
            Ok(probe_metrics(frac, f64::NAN))
        }
        ProbeKind::LevelDuration { level } => {
            // One transmitted symbol over the same-thread channel,
            // measured by the receiver under the scenario's noise.
            let channel = IChannel::new(ChannelKind::Thread, ctx.config().clone());
            let durations = channel.run_symbols(&[Symbol::new(level)])?;
            Ok(probe_metrics(durations[0] as f64, f64::NAN))
        }
        ProbeKind::OperatingPoint {
            class,
            freq_mhz,
            cores,
        } => {
            let spec = scenario.platform.spec();
            let freq = Freq::from_mhz(f64::from(freq_mhz));
            let base = spec.vf_curve.voltage_mv(freq);
            let classes: Vec<Option<InstClass>> = (0..spec.n_cores)
                .map(|i| (i < cores as usize).then_some(class))
                .collect();
            let vcc = base + spec.guardband().package_guardband_mv(&classes, base, freq);
            let acts: Vec<CoreActivity> = (0..spec.n_cores)
                .map(|i| {
                    if i < cores as usize {
                        CoreActivity::busy(class)
                    } else {
                        CoreActivity::IDLE
                    }
                })
                .collect();
            let icc = spec.current_model().icc_a(&acts, vcc, freq, 60.0);
            Ok(probe_metrics(vcc, icc))
        }
    }
}

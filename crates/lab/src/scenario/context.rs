//! [`TrialContext`]: the one run-one-trial engine every channel family
//! goes through — resolve spec → channel config → calibration →
//! transmit → [`TrialMetrics`].
//!
//! Before the split, `run_icc`/`run_multilevel`/`run_baseline`/
//! `run_probe` each re-derived the channel configuration and training
//! calibration from scratch; the context resolves the configuration
//! once and obtains calibrations through the process-wide memo
//! ([`Calibration::try_for_config`]). Per-trial seeds keep every
//! fresh campaign cell's fingerprint distinct (bytes cannot change),
//! so the memo pays off when identical configurations *recur* in one
//! process: catalog re-runs, A/B twins resolving to the same tuning,
//! and repeated trials.

use ichannels::baselines::dfscovert::DfsCovertChannel;
use ichannels::baselines::netspectre::NetSpectreChannel;
use ichannels::baselines::powert::PowerTChannel;
use ichannels::baselines::turbocc::TurboCcChannel;
use ichannels::ber::random_symbols;
use ichannels::channel::{Calibration, ChannelConfig, ChannelError, ChannelKind, IChannel};
use ichannels::extended::MultiLevelChannel;
use ichannels::symbols::Symbol;
use ichannels_meter::stats::ConfusionMatrix;
use ichannels_soc::config::PlatformSpec;
use ichannels_soc::sim::Soc;
use ichannels_workload::apps::{RandomPhiApp, SevenZipApp};

use super::{mix, AlphabetSpec, AppKind, BaselineKind, ChannelSelect, PayloadSpec, Scenario};
use crate::report::TrialMetrics;

/// The shared run-one-trial engine: a scenario with its channel
/// configuration resolved once, ready to execute whichever channel
/// family the scenario selects.
#[derive(Debug)]
pub struct TrialContext<'a> {
    scenario: &'a Scenario,
    cfg: ChannelConfig,
}

impl<'a> TrialContext<'a> {
    /// Resolves `scenario` into its channel configuration.
    pub fn new(scenario: &'a Scenario) -> Self {
        TrialContext {
            scenario,
            cfg: scenario.channel_config(),
        }
    }

    /// The scenario this context runs.
    pub fn scenario(&self) -> &Scenario {
        self.scenario
    }

    /// The resolved channel configuration.
    pub fn config(&self) -> &ChannelConfig {
        &self.cfg
    }

    /// The training calibration for `kind`, served by the process-wide
    /// memo — identical configurations calibrate once per process.
    ///
    /// # Errors
    ///
    /// Propagates the [`ChannelError`] of a failing training run.
    pub fn calibration(&self, kind: ChannelKind) -> Result<Calibration, ChannelError> {
        Calibration::try_for_config(kind, &self.cfg, self.scenario.calib_reps)
    }

    /// Runs the trial and returns its metrics.
    ///
    /// # Errors
    ///
    /// Propagates the [`ChannelError`] of a failing channel run — the
    /// caller ([`Scenario::run`]) records it on the trial instead of
    /// aborting the campaign.
    pub fn run(&self) -> Result<TrialMetrics, ChannelError> {
        match self.scenario.channel {
            ChannelSelect::Icc(kind) => self.run_icc(kind),
            ChannelSelect::MultiLevel(kind, alpha) => self.run_multilevel(kind, alpha),
            ChannelSelect::Baseline(b) => Ok(self.run_baseline(b)),
            ChannelSelect::Probe(p) => {
                // Probes have no separate calibration/metrics phases;
                // the whole measurement counts as transmit time.
                let _span = ichannels_obs::span("trial.transmit");
                super::probe::run_probe(self, p)
            }
        }
    }

    /// The trial's payload symbol stream, derived from the trial seed.
    fn payload_symbols_vec(&self) -> Vec<Symbol> {
        let s = self.scenario;
        match s.payload {
            PayloadSpec::Random => random_symbols(s.payload_symbols, mix(s.seed, 3)),
            PayloadSpec::Constant(v) => vec![Symbol::new(v); s.payload_symbols],
        }
    }

    /// A free hardware thread for the interfering app: one not occupied
    /// by the channel's sender/receiver.
    fn app_placement(&self, kind: ChannelKind, spec: &PlatformSpec) -> (usize, usize) {
        let occupied: &[(usize, usize)] = match kind {
            ChannelKind::Thread => &[(0, 0)],
            ChannelKind::Smt => &[(0, 0), (0, 1)],
            ChannelKind::Cores => &[(0, 0), (1, 0)],
        };
        let mut candidates = vec![(spec.n_cores - 1, 0)];
        if spec.smt {
            candidates.push((0, 1));
            candidates.push((spec.n_cores - 1, 1));
        }
        candidates.push((1, 0));
        candidates
            .into_iter()
            .find(|slot| !occupied.contains(slot))
            // lint:allow(R001): catalog platforms have >= 2 cores, so a
            // free slot always exists among the candidates.
            .expect("a catalog platform always has a free hardware thread")
    }

    fn run_icc(&self, kind: ChannelKind) -> Result<TrialMetrics, ChannelError> {
        let channel = IChannel::new(kind, self.cfg.clone());
        let cal = {
            let _span = ichannels_obs::span("trial.calibration");
            self.calibration(kind)?
        };
        let symbols = self.payload_symbols_vec();
        let app = self.scenario.app;
        let placement = app.map(|_| self.app_placement(kind, &channel.config().soc.platform));
        // Repeat-and-vote receivers occupy `votes` slots per symbol, so
        // interfering apps must run for the full stretched transmission.
        let slots = symbols.len() * channel.slots_per_symbol();
        let deadline =
            channel.config().start_offset + channel.config().slot_period.scale((slots + 2) as f64);
        let app_seed = mix(self.scenario.seed, 4);
        let transmit_span = ichannels_obs::span("trial.transmit");
        let tx = channel.try_transmit_symbols_with(&symbols, &cal, |soc: &mut Soc| {
            if let (Some(app), Some((core, smt))) = (app, placement) {
                let program: Box<dyn ichannels_soc::program::Program> = match app.kind {
                    AppKind::RandomLevels => Box::new(RandomPhiApp::sender_levels(
                        app.rate_hz,
                        app.burst_insts,
                        deadline,
                        app_seed,
                    )),
                    AppKind::FixedLevel(level) => Box::new(RandomPhiApp::new(
                        app.rate_hz,
                        app.burst_insts,
                        vec![Symbol::new(level).sender_class()],
                        deadline,
                        app_seed,
                    )),
                    AppKind::SevenZip => Box::new(SevenZipApp::typical(deadline, app_seed)),
                };
                soc.spawn(core, smt, program);
            }
        })?;
        drop(transmit_span);
        let _metrics_span = ichannels_obs::span("trial.metrics");
        let mut confusion = ConfusionMatrix::new(4);
        for (s, r) in tx.sent.iter().zip(&tx.received) {
            confusion.record(s.value() as usize, r.value() as usize);
        }
        let symbol_rate = ichannels::ber::symbol_rate(&channel);
        let mi = confusion.mutual_information_bits_corrected();
        Ok(TrialMetrics {
            ber: confusion.bit_error_rate_2bit(),
            ser: confusion.symbol_error_rate(),
            throughput_bps: tx.throughput_bps(),
            capacity_bps: mi * symbol_rate,
            mi_bits_per_symbol: mi,
            min_separation_cycles: cal.min_separation_cycles(),
            n_symbols: symbols.len(),
            probe_value: f64::NAN,
            probe_aux: f64::NAN,
        })
    }

    fn run_multilevel(
        &self,
        kind: ChannelKind,
        alpha: AlphabetSpec,
    ) -> Result<TrialMetrics, ChannelError> {
        let s = self.scenario;
        let channel = MultiLevelChannel::new(kind, self.cfg.clone(), alpha.alphabet());
        let means = {
            let _span = ichannels_obs::span("trial.calibration");
            channel.calibrate(s.calib_reps)
        };
        let eval = {
            let _span = ichannels_obs::span("trial.transmit");
            channel.evaluate(&means, s.payload_symbols, mix(s.seed, 3))
        };
        let _metrics_span = ichannels_obs::span("trial.metrics");
        let mut sorted = means.clone();
        sorted.sort_by(f64::total_cmp);
        let min_sep = sorted
            .windows(2)
            .map(|w| w[1] - w[0])
            .fold(f64::INFINITY, f64::min);
        let symbol_rate = 1.0 / self.cfg.slot_period.as_secs();
        Ok(TrialMetrics {
            // Bit error rate is 2-bit-symbol specific; undefined here.
            ber: f64::NAN,
            ser: eval.ser,
            throughput_bps: eval.raw_bits_per_symbol * symbol_rate,
            capacity_bps: eval.capacity_bps,
            mi_bits_per_symbol: eval.mi_bits_per_symbol,
            min_separation_cycles: min_sep,
            n_symbols: s.payload_symbols,
            probe_value: f64::NAN,
            probe_aux: f64::NAN,
        })
    }

    fn run_baseline(&self, kind: BaselineKind) -> TrialMetrics {
        // Baselines calibrate and transmit inside one published-setup
        // driver; the whole measurement counts as transmit time.
        let _span = ichannels_obs::span("trial.transmit");
        let payload_symbols = self.scenario.payload_symbols;
        let (bps, ber, n) = match kind {
            BaselineKind::NetSpectre => {
                let ns = NetSpectreChannel::default_cannon_lake();
                let cal = ns.calibrate(3);
                let bits: Vec<bool> = (0..payload_symbols).map(|i| i % 3 != 0).collect();
                let tx = ns.transmit(&bits, cal);
                (tx.throughput_bps, tx.bit_error_rate(), bits.len())
            }
            BaselineKind::DfsCovert => {
                let dfs = DfsCovertChannel::default();
                let bits: Vec<bool> = (0..8).map(|i| i % 2 == 0).collect();
                let (dec, bps) = dfs.transmit(&bits);
                let ber = bits.iter().zip(&dec).filter(|(a, b)| a != b).count() as f64
                    / bits.len() as f64;
                (bps, ber, bits.len())
            }
            BaselineKind::TurboCc => {
                let turbo = TurboCcChannel::default();
                let cal = turbo.calibrate(2);
                let bits = [true, false, true, true, false];
                let tx = turbo.transmit(&bits, cal);
                (tx.throughput_bps, tx.bit_error_rate(), bits.len())
            }
            BaselineKind::Powert => {
                let pt = PowerTChannel::default();
                let bits: Vec<bool> = (0..8).map(|i| i % 2 == 0).collect();
                let (dec, bps) = pt.transmit(&bits);
                let ber = bits.iter().zip(&dec).filter(|(a, b)| a != b).count() as f64
                    / bits.len() as f64;
                (bps, ber, bits.len())
            }
        };
        TrialMetrics {
            ber,
            ser: ber,
            throughput_bps: bps,
            // Baselines report measured throughput/BER only.
            n_symbols: n,
            ..TrialMetrics::undefined()
        }
    }
}

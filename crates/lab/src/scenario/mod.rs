//! The [`Scenario`] descriptor: one fully-specified simulated run.
//!
//! A scenario is pure data — platform, channel selection, level
//! alphabet, noise, mitigation set, concurrent-app interference, payload
//! and seeding — so it can be enumerated by a [`crate::grid::Grid`],
//! shipped to a worker thread, and executed hermetically. Every source
//! of randomness inside a trial (symbol stream, measurement jitter, OS
//! noise, app arrivals) is derived from the scenario's single `seed`,
//! which makes parallel execution bit-identical to serial execution.
//!
//! The module splits along the trial pipeline:
//!
//! * [`axes`](self) — the sweepable axis value types ([`PlatformId`],
//!   [`ChannelSelect`], [`NoiseSpec`], [`AppSpec`], [`Knob`],
//!   [`ReceiverSpec`], [`PayloadSpec`], …), re-exported here;
//! * [`TrialContext`] — the shared run-one-trial engine (resolve spec →
//!   channel config → memoized calibration → transmit → metrics);
//! * probes ([`ProbeKind`]) — the characterization figures as engine
//!   cells, executed through the same context.

mod axes;
mod context;
mod probe;

pub use axes::{
    mitigations_label, AlphabetSpec, AppKind, AppSpec, BaselineKind, ChannelSelect, Knob,
    NoiseSpec, PayloadSpec, PlatformId, ReceiverSpec,
};
pub use context::TrialContext;
pub use probe::{inflation_to_tp_us, IdqCondition, ProbeKind, IDQ_PROBE_WINDOW_CYCLES};

use ichannels::channel::{ChannelConfig, ChannelKind};
use ichannels::mitigations::Mitigation;
use ichannels_soc::config::SocConfig;
use ichannels_uarch::time::Freq;

use crate::report::{TrialMetrics, TrialRecord};

/// SplitMix64 step — the seed-derivation mixer used throughout the lab.
pub(crate) fn mix(seed: u64, stream: u64) -> u64 {
    let mut z = seed
        .wrapping_add(stream.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One fully-specified simulated run.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Platform the SoC simulates.
    pub platform: PlatformId,
    /// Which channel to drive.
    pub channel: ChannelSelect,
    /// OS noise.
    pub noise: NoiseSpec,
    /// Mitigations applied to the SoC (§7).
    pub mitigations: Vec<Mitigation>,
    /// Optional concurrent interfering application.
    pub app: Option<AppSpec>,
    /// Optional design-parameter override (the ablation axis).
    pub knob: Option<Knob>,
    /// Receiver selection (platform-calibrated by default).
    pub receiver: ReceiverSpec,
    /// Symbol stream shape.
    pub payload: PayloadSpec,
    /// Number of payload symbols per trial.
    pub payload_symbols: usize,
    /// Calibration repetitions per level.
    pub calib_reps: usize,
    /// Pinned frequency override (GHz); platform default when `None`.
    pub freq_ghz: Option<f64>,
    /// Trial index within the cell.
    pub trial: u32,
    /// The trial's master seed; every internal RNG stream derives from
    /// it, so a scenario's outcome is a pure function of its fields.
    pub seed: u64,
}

impl Scenario {
    /// True if this combination is actually runnable: SMT channels need
    /// an SMT platform, cross-core channels a second core, and baseline
    /// channels only exist in their fixed published setup (default
    /// platform/noise/mitigation/app/payload axes, single trial) — any
    /// other combination would export rows whose axis labels never
    /// applied to the measurement.
    pub fn supported(&self) -> bool {
        let kind = match self.channel {
            ChannelSelect::Icc(kind) => kind,
            // The multi-level channel decodes its own wider alphabet
            // and has no adaptive receiver: a non-default receiver
            // label would never apply to the measurement.
            ChannelSelect::MultiLevel(kind, _) => {
                if !self.receiver.is_default() {
                    return false;
                }
                kind
            }
            ChannelSelect::Baseline(_) => {
                return self.platform == PlatformId::CannonLake
                    && self.noise == NoiseSpec::Quiet
                    && self.mitigations.is_empty()
                    && self.app.is_none()
                    && self.knob.is_none()
                    && self.receiver.is_default()
                    && self.payload == PayloadSpec::Random
                    && self.trial == 0;
            }
            ChannelSelect::Probe(probe) => return self.probe_supported(probe),
        };
        let spec = self.platform.spec();
        match kind {
            ChannelKind::Thread => true,
            ChannelKind::Smt => spec.smt,
            ChannelKind::Cores => spec.n_cores >= 2,
        }
    }

    /// The cell key: every axis except the trial index. Trials of one
    /// cell aggregate into one summary row.
    pub fn cell_key(&self) -> String {
        let mut key = format!(
            "{}/{}/{}/{}/{}/{}x{}",
            self.platform.label(),
            self.channel.label(),
            self.noise.label(),
            mitigations_label(&self.mitigations),
            self.app.map_or_else(|| "noapp".to_string(), AppSpec::label),
            self.payload.label(),
            self.payload_symbols,
        );
        // Off-default axes append labeled segments, so cell keys (and
        // therefore the seeds derived from them) of campaigns that do
        // not sweep frequency or knobs are unchanged.
        if let Some(ghz) = self.freq_ghz {
            key.push_str(&format!("/f{ghz}"));
        }
        if let Some(knob) = self.knob {
            key.push('/');
            key.push_str(&knob.label());
        }
        if !self.receiver.is_default() {
            key.push('/');
            key.push_str(&self.receiver.label());
        }
        key
    }

    /// Full trial label: cell key plus trial index.
    pub fn label(&self) -> String {
        format!("{}#{}", self.cell_key(), self.trial)
    }

    /// Builds the channel configuration for IChannel-family scenarios:
    /// platform pinned at the scenario frequency, noise and mitigations
    /// applied, jitter and SoC seeds derived from the trial seed.
    pub fn channel_config(&self) -> ChannelConfig {
        let spec = self.platform.spec();
        let ghz = self.freq_ghz.unwrap_or(self.platform.default_freq_ghz());
        let freq = spec.pstates.highest_not_above(Freq::from_ghz(ghz));
        let mut cfg = ChannelConfig::default_cannon_lake();
        cfg.soc = SocConfig::pinned(spec, freq).with_noise(self.noise.config());
        for m in &self.mitigations {
            cfg = m.apply(cfg);
        }
        if let Some(knob) = self.knob {
            knob.apply(&mut cfg);
        }
        cfg.receiver = self.receiver.mode();
        cfg.jitter_seed = mix(self.seed, 1);
        cfg.soc.seed = mix(self.seed, 2);
        cfg
    }

    /// Runs the trial to completion and returns its record.
    ///
    /// A failing channel run ([`ichannels::channel::ChannelError`], e.g.
    /// a knob override that breaks the slot schedule) is recorded on the
    /// trial — undefined metrics plus a readable `error` — so one bad
    /// cell never aborts the campaign or shard executing it.
    ///
    /// # Panics
    ///
    /// Panics if the scenario is not [`Scenario::supported`].
    pub fn run(&self) -> TrialRecord {
        let _total = ichannels_obs::span("trial.total");
        ichannels_obs::counter_add("trial.runs", 1);
        {
            let _resolve = ichannels_obs::span("trial.resolve");
            assert!(
                self.supported(),
                "unsupported scenario {} (grids filter these)",
                self.label()
            );
        }
        let ctx = {
            let _config = ichannels_obs::span("trial.config");
            TrialContext::new(self)
        };
        match ctx.run() {
            Ok(metrics) => TrialRecord {
                scenario: self.clone(),
                metrics,
                error: None,
            },
            Err(e) => {
                ichannels_obs::counter_add("trial.errors", 1);
                TrialRecord {
                    scenario: self.clone(),
                    metrics: TrialMetrics::undefined(),
                    error: Some(e.to_string()),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ichannels::channel::{ReceiverCalibration, ReceiverMode};
    use ichannels_uarch::isa::InstClass;
    use ichannels_uarch::time::SimTime;

    fn base_scenario() -> Scenario {
        Scenario {
            platform: PlatformId::CannonLake,
            channel: ChannelSelect::Icc(ChannelKind::Thread),
            noise: NoiseSpec::Quiet,
            mitigations: vec![],
            app: None,
            knob: None,
            receiver: ReceiverSpec::Calibrated,
            payload: PayloadSpec::Random,
            payload_symbols: 8,
            calib_reps: 2,
            freq_ghz: None,
            trial: 0,
            seed: 7,
        }
    }

    #[test]
    fn quiet_thread_trial_is_error_free() {
        let record = base_scenario().run();
        assert_eq!(record.metrics.ber, 0.0);
        assert!(record.metrics.throughput_bps > 2_500.0);
        assert!(record.metrics.min_separation_cycles > 1_500.0);
        assert_eq!(record.error, None);
    }

    #[test]
    fn trials_are_pure_functions_of_the_scenario() {
        let s = base_scenario();
        let a = s.run();
        let b = s.run();
        assert_eq!(a.metrics.ber, b.metrics.ber);
        assert_eq!(a.metrics.throughput_bps, b.metrics.throughput_bps);
        let mut other = s.clone();
        other.seed = 8;
        // A different seed draws a different payload; metrics may agree
        // but the rendered rows must reflect the seed.
        assert_ne!(other.run().scenario.seed, a.scenario.seed);
    }

    #[test]
    fn smt_unsupported_on_coffee_lake() {
        let mut s = base_scenario();
        s.platform = PlatformId::CoffeeLake;
        s.channel = ChannelSelect::Icc(ChannelKind::Smt);
        assert!(!s.supported());
        s.channel = ChannelSelect::Icc(ChannelKind::Cores);
        assert!(s.supported());
    }

    #[test]
    fn cell_key_excludes_trial() {
        let mut s = base_scenario();
        s.trial = 3;
        let t0 = {
            let mut x = s.clone();
            x.trial = 0;
            x
        };
        assert_eq!(s.cell_key(), t0.cell_key());
        assert_ne!(s.label(), t0.label());
    }

    #[test]
    fn default_axes_leave_cell_keys_unchanged() {
        // PR-1 campaigns never set freq or knob: their keys (and seeds)
        // must not grow new segments.
        let s = base_scenario();
        assert!(!s.cell_key().contains("/f"), "{}", s.cell_key());
        let mut pinned = s.clone();
        pinned.freq_ghz = Some(1.4);
        assert!(
            pinned.cell_key().ends_with("/f1.4"),
            "{}",
            pinned.cell_key()
        );
        let mut knobbed = s.clone();
        knobbed.knob = Some(Knob::VrSlew(4.8));
        assert!(
            knobbed.cell_key().ends_with("/slew4.8"),
            "{}",
            knobbed.cell_key()
        );
        // The default (calibrated) receiver adds no segment either; the
        // off-default receivers do.
        assert!(!s.cell_key().contains("/rx-"), "{}", s.cell_key());
        let mut legacy = s.clone();
        legacy.receiver = ReceiverSpec::Legacy;
        assert!(
            legacy.cell_key().ends_with("/rx-legacy"),
            "{}",
            legacy.cell_key()
        );
        let mut fixed = s.clone();
        fixed.receiver = ReceiverSpec::Fixed {
            window_scale: 2.0,
            votes: 5,
        };
        assert!(
            fixed.cell_key().ends_with("/rx-w2v5"),
            "{}",
            fixed.cell_key()
        );
    }

    #[test]
    fn off_default_receivers_only_apply_to_icc_channels() {
        let legacy = ReceiverSpec::Legacy;
        // IChannel scenarios accept any receiver.
        let mut s = base_scenario();
        s.receiver = legacy;
        assert!(s.supported());
        // Probes, baselines, and the multi-level channel decode outside
        // the adaptive receiver: a non-default label would be false.
        let mut probe = base_scenario();
        probe.channel = ChannelSelect::Probe(ProbeKind::Tp {
            class: InstClass::Heavy256,
            cores: 1,
        });
        assert!(probe.supported());
        probe.receiver = legacy;
        assert!(!probe.supported());
        let mut baseline = base_scenario();
        baseline.channel = ChannelSelect::Baseline(BaselineKind::NetSpectre);
        assert!(baseline.supported());
        baseline.receiver = legacy;
        assert!(!baseline.supported());
        let mut multi = base_scenario();
        multi.channel = ChannelSelect::MultiLevel(ChannelKind::Thread, AlphabetSpec::Phi6);
        assert!(multi.supported());
        multi.receiver = legacy;
        assert!(!multi.supported());
    }

    #[test]
    fn receiver_spec_maps_onto_core_modes() {
        assert_eq!(ReceiverSpec::Calibrated.mode(), ReceiverMode::Calibrated);
        assert_eq!(ReceiverSpec::Legacy.mode(), ReceiverMode::Legacy);
        let fixed = ReceiverSpec::Fixed {
            window_scale: 2.0,
            votes: 3,
        };
        assert_eq!(
            fixed.mode(),
            ReceiverMode::Fixed(ReceiverCalibration {
                window_scale: 2.0,
                votes: 3
            })
        );
        // The scenario's channel config carries the selection.
        let mut s = base_scenario();
        s.receiver = fixed;
        assert_eq!(s.channel_config().receiver, fixed.mode());
    }

    #[test]
    fn tp_probe_measures_a_throttling_period() {
        let mut s = base_scenario();
        s.channel = ChannelSelect::Probe(ProbeKind::Tp {
            class: InstClass::Heavy256,
            cores: 1,
        });
        let record = s.run();
        // Cannon Lake AVX2 TP at the default 1.4 GHz pin.
        assert!(
            (3.0..12.0).contains(&record.metrics.probe_value),
            "tp = {}",
            record.metrics.probe_value
        );
        assert!(record.metrics.ber.is_nan());
        // The TP grows with frequency (Figure 10(a) / Key Conclusion 4).
        let mut fast = s.clone();
        fast.freq_ghz = Some(3.0);
        assert!(fast.run().metrics.probe_value > record.metrics.probe_value);
    }

    #[test]
    fn idq_probe_matches_figure_11() {
        let run = |cond| {
            let mut s = base_scenario();
            s.channel = ChannelSelect::Probe(ProbeKind::Idq(cond));
            s.run().metrics.probe_value
        };
        assert!((run(IdqCondition::Throttled) - 0.75).abs() < 0.01);
        assert!(run(IdqCondition::Unthrottled) < 0.01);
        assert!((run(IdqCondition::SmtSibling) - 0.75).abs() < 0.01);
    }

    #[test]
    fn probes_reject_off_default_axes() {
        let mut s = base_scenario();
        s.channel = ChannelSelect::Probe(ProbeKind::Tp {
            class: InstClass::Heavy256,
            cores: 1,
        });
        assert!(s.supported());
        let mut mitigated = s.clone();
        mitigated.mitigations = vec![Mitigation::SecureMode];
        assert!(!mitigated.supported());
        let mut eight_cores = s.clone();
        eight_cores.channel = ChannelSelect::Probe(ProbeKind::Tp {
            class: InstClass::Heavy256,
            cores: 8,
        });
        assert!(!eight_cores.supported(), "cannon lake has 2 cores");
        eight_cores.platform = PlatformId::CoffeeLake;
        assert!(eight_cores.supported());
        // Probes that never read the pinned frequency reject the freq
        // axis (the rows would claim a sweep that never happened).
        let mut pinned_idq = s.clone();
        pinned_idq.channel = ChannelSelect::Probe(ProbeKind::Idq(IdqCondition::Throttled));
        assert!(pinned_idq.supported());
        pinned_idq.freq_ghz = Some(2.0);
        assert!(!pinned_idq.supported());
        let mut pinned_op = s.clone();
        pinned_op.channel = ChannelSelect::Probe(ProbeKind::OperatingPoint {
            class: InstClass::Heavy256,
            freq_mhz: 2200,
            cores: 1,
        });
        assert!(pinned_op.supported());
        pinned_op.freq_ghz = Some(2.0);
        assert!(!pinned_op.supported());
    }

    #[test]
    fn reset_time_knob_rescales_the_slot_period() {
        let mut s = base_scenario();
        s.knob = Some(Knob::ResetTimeUs(150.0));
        let cfg = s.channel_config();
        assert_eq!(cfg.slot_period, SimTime::from_us(190.0));
        assert_eq!(cfg.soc.platform.reset_time, SimTime::from_us(150.0));
    }

    #[test]
    fn mitigation_labels_are_stable() {
        assert_eq!(mitigations_label(&[]), "none");
        assert_eq!(
            mitigations_label(&[Mitigation::PerCoreVr, Mitigation::SecureMode]),
            "per-core-vr+secure-mode"
        );
    }

    #[test]
    fn secure_mode_scenario_kills_capacity() {
        let mut s = base_scenario();
        s.payload_symbols = 24;
        let baseline = s.run();
        s.mitigations = vec![Mitigation::SecureMode];
        let mitigated = s.run();
        assert!(
            mitigated.metrics.capacity_bps < 0.08 * baseline.metrics.capacity_bps,
            "residual capacity {} vs {}",
            mitigated.metrics.capacity_bps,
            baseline.metrics.capacity_bps
        );
    }

    #[test]
    fn broken_knob_fails_the_cell_not_the_process() {
        // A reset-time override far below the PHI-loop duration breaks
        // the slot schedule; the trial must come back as a record with
        // a readable error instead of panicking the worker (and, by
        // extension, the whole shard).
        let mut s = base_scenario();
        s.knob = Some(Knob::ResetTimeUs(0.001));
        // A stream of the heaviest level overruns the collapsed 40 µs
        // slots faster than the 2-slot deadline slack can absorb.
        s.payload = PayloadSpec::Constant(3);
        s.payload_symbols = 24;
        assert!(s.supported());
        let record = s.run();
        let err = record.error.as_deref().expect("schedule must collapse");
        assert!(err.contains("missed transactions"), "unreadable: {err}");
        assert!(record.metrics.ber.is_nan());
        assert_eq!(record.metrics.n_symbols, 0);
        // A healthy sibling cell still runs in the same process.
        let healthy = base_scenario().run();
        assert_eq!(healthy.error, None);
        assert_eq!(healthy.metrics.ber, 0.0);
    }

    #[test]
    fn trial_context_exposes_the_resolved_pipeline() {
        let s = base_scenario();
        let ctx = TrialContext::new(&s);
        assert_eq!(ctx.scenario(), &s);
        assert_eq!(ctx.config().jitter_seed, mix(s.seed, 1));
        let cal = ctx
            .calibration(ChannelKind::Thread)
            .expect("clean calibration");
        assert!(cal.min_separation_cycles() > 1_500.0);
        let metrics = ctx.run().expect("clean trial");
        assert_eq!(metrics.ber, s.run().metrics.ber);
    }
}

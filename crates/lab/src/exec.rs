//! The multi-threaded campaign executor.
//!
//! A plain `std::thread` worker pool drains a shared atomic work index
//! over the work list; each worker runs items hermetically (every
//! trial re-derives all of its randomness from the scenario seed) and
//! deposits the result at the item's slot. Results therefore come
//! back in input order and are **bit-identical** for any worker count —
//! the property the determinism tests pin down. [`Executor::run`]
//! executes [`Scenario`] lists; the generic [`Executor::map`] executes
//! any hermetic per-item function (e.g. the trace experiments of
//! [`crate::trace`]) on the same pool.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use crate::report::TrialRecord;
use crate::scenario::Scenario;

/// A worker pool executing scenario lists.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Executor {
    threads: usize,
}

impl Executor {
    /// A pool with `threads` workers.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    pub fn new(threads: usize) -> Self {
        assert!(threads >= 1, "executor needs at least one thread");
        Executor { threads }
    }

    /// The single-threaded reference executor.
    pub fn serial() -> Self {
        Executor { threads: 1 }
    }

    /// A pool sized to the machine (`std::thread::available_parallelism`,
    /// capped at 8 — trials are CPU-bound simulations).
    pub fn auto() -> Self {
        let threads = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
            .min(8);
        Executor::new(threads.max(1))
    }

    /// Worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs every scenario and returns records in input order.
    pub fn run(&self, scenarios: &[Scenario]) -> Vec<TrialRecord> {
        self.map(scenarios, Scenario::run)
    }

    /// Applies a hermetic function to every item on the worker pool,
    /// returning results in input order. The function must derive any
    /// randomness from the item itself so that results are identical
    /// for every worker count.
    pub fn map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        self.map_streamed(items, f, |_, _| {})
    }

    /// [`Executor::map`], additionally delivering every result to
    /// `sink` **in input order, as it becomes available** — results
    /// are reordered through a completion buffer, so the sink observes
    /// the same sequence for any worker count. This is the streaming
    /// path campaign runs use to keep their JSONL a valid prefix of
    /// the full output while still executing (what makes interrupted
    /// campaigns resumable).
    pub fn map_streamed<T, R, F, S>(&self, items: &[T], f: F, mut sink: S) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
        S: FnMut(usize, &R),
    {
        if items.is_empty() {
            return Vec::new();
        }
        // Pool telemetry (out-of-band: never read back by the run).
        let telemetry = ichannels_obs::enabled();
        // lint:allow(D002): telemetry-gated pool timing; off by default
        // and never part of campaign bytes.
        let pool_started = telemetry.then(std::time::Instant::now);
        let next = Arc::new(AtomicUsize::new(0));
        let (tx, rx) = std::sync::mpsc::channel::<(usize, R)>();
        let f = &f;
        let mut slots: Vec<Option<R>> = items.iter().map(|_| None).collect();
        std::thread::scope(|scope| {
            let workers = self.threads.min(items.len());
            if telemetry {
                ichannels_obs::gauge_max("exec.threads", workers as u64);
            }
            for _ in 0..workers {
                let next = Arc::clone(&next);
                let tx = tx.clone();
                scope.spawn(move || {
                    let mut busy_ns = 0u64;
                    let mut done = 0u64;
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        // lint:allow(D002): telemetry-gated worker
                        // busy-time sample; never in campaign bytes.
                        let item_started = telemetry.then(std::time::Instant::now);
                        let result = f(&items[i]);
                        if let Some(started) = item_started {
                            busy_ns = busy_ns.saturating_add(
                                u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX),
                            );
                            done += 1;
                        }
                        if tx.send((i, result)).is_err() {
                            break;
                        }
                    }
                    if telemetry {
                        // One sample per worker: the distribution shows
                        // pool balance, the sum total busy time.
                        ichannels_obs::observe("exec.worker_busy_ns", busy_ns);
                        ichannels_obs::counter_add("exec.items", done);
                    }
                });
            }
            drop(tx);
            // The calling thread drains completions, emitting the
            // in-order prefix as it fills in.
            let mut emitted = 0;
            for (i, result) in rx {
                slots[i] = Some(result);
                while let Some(Some(ready)) = slots.get(emitted) {
                    sink(emitted, ready);
                    emitted += 1;
                }
            }
        });
        if let Some(started) = pool_started {
            let ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
            ichannels_obs::observe("exec.pool_wall_ns", ns);
        }
        slots
            .into_iter()
            // lint:allow(R001): the drain loop above runs until every
            // worker sent its result, so each slot is Some.
            .map(|slot| slot.expect("every slot filled"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::Grid;
    use crate::report::records_to_jsonl;
    use ichannels::channel::ChannelKind;

    #[test]
    fn empty_input_yields_empty_output() {
        assert!(Executor::new(4).run(&[]).is_empty());
    }

    #[test]
    fn streamed_sink_observes_results_in_input_order() {
        let items: Vec<u64> = (0..40).collect();
        // Skew per-item latency so completion order differs wildly
        // from input order on a parallel pool.
        let slow_square = |v: &u64| {
            std::thread::sleep(std::time::Duration::from_micros((40 - v) * 50));
            v * v
        };
        let mut seen = Vec::new();
        let out = Executor::new(4).map_streamed(&items, slow_square, |i, r| seen.push((i, *r)));
        assert_eq!(out, items.iter().map(|v| v * v).collect::<Vec<_>>());
        let expected: Vec<(usize, u64)> = items.iter().map(|&v| (v as usize, v * v)).collect();
        assert_eq!(seen, expected, "sink saw out-of-order or missing results");
    }

    #[test]
    fn parallel_matches_serial_bit_for_bit() {
        let grid = Grid::new()
            .kinds(&[ChannelKind::Thread, ChannelKind::Smt])
            .trials(2)
            .payload_symbols(6);
        let scenarios = grid.scenarios();
        let serial = Executor::serial().run(&scenarios);
        let parallel = Executor::new(4).run(&scenarios);
        assert_eq!(records_to_jsonl(&serial), records_to_jsonl(&parallel));
    }
}

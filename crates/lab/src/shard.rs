//! Sharding: split one campaign across processes, merge the streams
//! back.
//!
//! A [`ShardSpec`] deterministically partitions a grid's scenario list
//! by round-robin over enumeration order: scenario `i` belongs to shard
//! `i % count`. The union of all shards is therefore the unsharded work
//! list exactly once, every shard's size differs by at most one
//! scenario (balanced wall-clock across CI jobs), and — because
//! per-trial seeds derive from cell keys, not enumeration positions —
//! every shard reproduces exactly the trials the unsharded run would
//! have produced.
//!
//! Sharded JSONL outputs carry one header line
//! (`{"shard_campaign":…,"shard_index":…,"shard_count":…,"shard_total":…}`)
//! ahead of the trial rows; [`merge_streams`] uses it to re-interleave
//! N shard streams back into grid enumeration order, verifying along
//! the way that every shard is present exactly once, that shard lengths
//! match the round-robin partition of the recorded total, and that no
//! trial key is duplicated or missing. The merged stream is
//! byte-identical to the unsharded run's JSONL (headerless), so the
//! trial/cell CSVs re-derived from it are byte-identical too.

use std::fmt;
use std::fs;
use std::path::Path;

use ichannels_meter::export::JsonlRow;
use ichannels_meter::parse::{field, parse_jsonl_line, JsonValue};

use crate::report::TrialRow;

/// Which slice of a campaign this process runs: shard `index` of
/// `count`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ShardSpec {
    index: usize,
    count: usize,
}

/// A rejected shard specification (malformed or out of range).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardSpecError {
    message: String,
}

impl fmt::Display for ShardSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid shard spec: {}", self.message)
    }
}

impl std::error::Error for ShardSpecError {}

impl ShardSpec {
    /// Shard `index` of `count`.
    ///
    /// # Errors
    ///
    /// Rejects `count == 0` and `index >= count`.
    pub fn new(index: usize, count: usize) -> Result<Self, ShardSpecError> {
        if count == 0 {
            return Err(ShardSpecError {
                message: format!("shard count must be at least 1 (got {index}/{count})"),
            });
        }
        if index >= count {
            return Err(ShardSpecError {
                message: format!(
                    "shard index {index} out of range for {count} shard(s) \
                     (valid: 0/{count}..{}/{count})",
                    count - 1
                ),
            });
        }
        Ok(ShardSpec { index, count })
    }

    /// Parses an `I/N` spec (e.g. `0/3`), as passed to `--shard`.
    ///
    /// # Errors
    ///
    /// Rejects anything that is not two integers joined by `/` with
    /// `0 <= I < N` — `0/0`, `3/2`, `1-4`, and friends all fail with a
    /// message naming the expected shape.
    pub fn parse(spec: &str) -> Result<Self, ShardSpecError> {
        let (index, count) = spec.split_once('/').ok_or_else(|| ShardSpecError {
            message: format!("expected I/N (e.g. 0/3), got {spec:?}"),
        })?;
        let parse_part = |part: &str, what: &str| {
            part.trim().parse::<usize>().map_err(|_| ShardSpecError {
                message: format!("{what} {part:?} is not a non-negative integer in {spec:?}"),
            })
        };
        ShardSpec::new(
            parse_part(index, "shard index")?,
            parse_part(count, "shard count")?,
        )
    }

    /// The degenerate single-shard spec: the whole campaign.
    pub const fn full() -> Self {
        ShardSpec { index: 0, count: 1 }
    }

    /// True for the single-shard spec — runs behave exactly as
    /// unsharded (no header line, unsuffixed file names).
    pub const fn is_full(self) -> bool {
        self.count == 1
    }

    /// Shard index (`0..count`).
    pub const fn index(self) -> usize {
        self.index
    }

    /// Total number of shards.
    pub const fn count(self) -> usize {
        self.count
    }

    /// The export file stem for campaign `name`: `name` itself for the
    /// full spec, `name_shard{I}of{N}` otherwise (so shards of one
    /// campaign can land in one directory without colliding).
    pub fn file_stem(self, name: &str) -> String {
        if self.is_full() {
            name.to_string()
        } else {
            format!("{name}_shard{}of{}", self.index, self.count)
        }
    }

    /// True if item `i` of the enumeration belongs to this shard.
    pub const fn owns(self, i: usize) -> bool {
        i % self.count == self.index
    }

    /// Number of items this shard owns out of `total`.
    pub const fn len_of(self, total: usize) -> usize {
        total / self.count + ((total % self.count > self.index) as usize)
    }

    /// Selects this shard's items, preserving enumeration order.
    pub fn select<T: Clone>(self, items: &[T]) -> Vec<T> {
        items
            .iter()
            .enumerate()
            .filter(|(i, _)| self.owns(*i))
            .map(|(_, item)| item.clone())
            .collect()
    }

    /// The JSONL header line written ahead of a sharded trial stream.
    pub fn header_row(self, campaign: &str, total: usize) -> JsonlRow {
        JsonlRow::new()
            .str("shard_campaign", campaign)
            .int("shard_index", self.index as u64)
            .int("shard_count", self.count as u64)
            .int("shard_total", total as u64)
    }
}

impl fmt::Display for ShardSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.index, self.count)
    }
}

/// Parses one line as a shard header, if it is one: returns
/// `(campaign, spec, total)`. Trial rows, torn lines, and anything
/// else that is not a well-formed header return `None` — resume uses
/// this to recognize (and then verify) the stream it is about to
/// trust.
pub fn parse_header_line(line: &str) -> Option<(String, ShardSpec, usize)> {
    let fields = parse_jsonl_line(line).ok()?;
    let campaign = field(&fields, "shard_campaign")
        .and_then(JsonValue::as_str)?
        .to_string();
    let uint = |key: &str| field(&fields, key).and_then(JsonValue::as_u64);
    let spec = ShardSpec::new(uint("shard_index")? as usize, uint("shard_count")? as usize).ok()?;
    let total = uint("shard_total")? as usize;
    Some((campaign, spec, total))
}

/// One reloaded shard output: the header plus its trial rows in shard
/// order.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardStream {
    /// Campaign name recorded in the header.
    pub campaign: String,
    /// Which shard this stream is.
    pub spec: ShardSpec,
    /// Unsharded scenario count recorded in the header.
    pub total: usize,
    /// The shard's trial rows, in enumeration order.
    pub rows: Vec<TrialRow>,
}

/// Why a set of shard streams cannot be merged.
#[derive(Debug, Clone, PartialEq)]
pub enum MergeError {
    /// A file could not be read.
    Io(String),
    /// The first line of a stream is not a shard header (unsharded
    /// outputs have none and need no merge).
    MissingHeader(String),
    /// A trial line failed to parse.
    BadRow {
        /// Which stream.
        source: String,
        /// 1-based line number.
        line: usize,
        /// Parse failure description.
        message: String,
    },
    /// No input streams were given.
    NoStreams,
    /// A single shard-of-one stream was given: it already is the
    /// complete campaign, so "merging" it would only lose the header's
    /// provenance — copy the file or rerun unsharded instead.
    SingleStream(String),
    /// Streams disagree on campaign name, shard count, or total.
    InconsistentHeaders(String),
    /// The same shard index appears twice.
    DuplicateShard(usize),
    /// A shard index of the recorded count is absent.
    MissingShard(usize),
    /// A shard's row count does not match the round-robin partition of
    /// the recorded total (an interrupted or doctored shard run).
    ShardLength {
        /// Which shard.
        index: usize,
        /// Rows the partition predicts.
        expected: usize,
        /// Rows actually present.
        got: usize,
    },
    /// One trial key appears more than once across the streams.
    DuplicateTrial(String),
}

impl fmt::Display for MergeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MergeError::Io(m) => write!(f, "{m}"),
            MergeError::MissingHeader(src) => {
                write!(f, "{src}: no shard header (not a sharded trial stream)")
            }
            MergeError::BadRow {
                source,
                line,
                message,
            } => write!(f, "{source}:{line}: {message}"),
            MergeError::NoStreams => write!(f, "no shard streams to merge"),
            MergeError::SingleStream(campaign) => write!(
                f,
                "campaign {campaign:?}: a single 1/1 stream is already the complete \
                 campaign; copy it (or rerun unsharded) instead of merging"
            ),
            MergeError::InconsistentHeaders(m) => write!(f, "inconsistent shard headers: {m}"),
            MergeError::DuplicateShard(i) => write!(f, "shard {i} appears more than once"),
            MergeError::MissingShard(i) => write!(f, "shard {i} is missing"),
            MergeError::ShardLength {
                index,
                expected,
                got,
            } => write!(
                f,
                "shard {index} has {got} trial row(s), expected {expected} \
                 (incomplete or duplicated cells)"
            ),
            MergeError::DuplicateTrial(key) => {
                write!(f, "trial {key} appears in more than one shard")
            }
        }
    }
}

impl std::error::Error for MergeError {}

impl ShardStream {
    /// Parses a sharded JSONL document (header line + trial rows).
    /// `source` names the stream in error messages.
    ///
    /// # Errors
    ///
    /// Returns [`MergeError`] for a missing/malformed header or any
    /// unparseable trial line.
    pub fn parse(source: &str, text: &str) -> Result<Self, MergeError> {
        let mut lines = text.lines();
        let header = lines
            .next()
            .ok_or_else(|| MergeError::MissingHeader(source.to_string()))?;
        let fields =
            parse_jsonl_line(header).map_err(|_| MergeError::MissingHeader(source.to_string()))?;
        let campaign = field(&fields, "shard_campaign")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| MergeError::MissingHeader(source.to_string()))?
            .to_string();
        let uint = |key: &str| {
            field(&fields, key)
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| MergeError::MissingHeader(source.to_string()))
        };
        let spec = ShardSpec::new(uint("shard_index")? as usize, uint("shard_count")? as usize)
            .map_err(|e| MergeError::InconsistentHeaders(e.to_string()))?;
        let total = uint("shard_total")? as usize;
        let mut rows = Vec::new();
        for (i, line) in lines.enumerate() {
            rows.push(TrialRow::parse(line).map_err(|message| MergeError::BadRow {
                source: source.to_string(),
                line: i + 2,
                message,
            })?);
        }
        Ok(ShardStream {
            campaign,
            spec,
            total,
            rows,
        })
    }

    /// Reads and parses one sharded JSONL file.
    ///
    /// # Errors
    ///
    /// Returns [`MergeError::Io`] for read failures, plus everything
    /// [`ShardStream::parse`] rejects.
    pub fn read(path: impl AsRef<Path>) -> Result<Self, MergeError> {
        let path = path.as_ref();
        let text = fs::read_to_string(path)
            .map_err(|e| MergeError::Io(format!("{}: {e}", path.display())))?;
        ShardStream::parse(&path.display().to_string(), &text)
    }
}

/// Merges shard streams back into one campaign in grid enumeration
/// order: the inverse of [`ShardSpec::select`] over all shards.
///
/// Returns `(campaign_name, rows)`; the rows render byte-identically
/// to the unsharded run's trial stream.
///
/// # Errors
///
/// Returns [`MergeError`] when the streams are not exactly the N
/// shards of one campaign run: no streams at all, a lone shard-of-one
/// (already complete — nothing to merge), mixed campaigns or shard
/// counts, duplicate or missing shard indices, shard lengths
/// inconsistent with the recorded scenario total (missing cells), or
/// duplicated trial keys.
pub fn merge_streams(streams: Vec<ShardStream>) -> Result<(String, Vec<TrialRow>), MergeError> {
    let first = streams.first().ok_or(MergeError::NoStreams)?;
    let (campaign, count, total) = (first.campaign.clone(), first.spec.count(), first.total);
    if streams.len() == 1 && count == 1 {
        // Without this, a lone 1/1 stream would "merge" into a mere
        // copy and silently bless whatever partial content it holds.
        return Err(MergeError::SingleStream(campaign));
    }
    if count != streams.len() {
        return Err(MergeError::InconsistentHeaders(format!(
            "headers declare {count} shard(s) but {} stream(s) were given",
            streams.len()
        )));
    }
    let mut by_index: Vec<Option<ShardStream>> = (0..count).map(|_| None).collect();
    for stream in streams {
        if stream.campaign != campaign {
            return Err(MergeError::InconsistentHeaders(format!(
                "campaign {:?} mixed with {campaign:?}",
                stream.campaign
            )));
        }
        if stream.spec.count() != count {
            return Err(MergeError::InconsistentHeaders(format!(
                "shard counts {} and {count} mixed",
                stream.spec.count()
            )));
        }
        if stream.total != total {
            return Err(MergeError::InconsistentHeaders(format!(
                "scenario totals {} and {total} mixed",
                stream.total
            )));
        }
        let slot = &mut by_index[stream.spec.index()];
        if slot.is_some() {
            return Err(MergeError::DuplicateShard(stream.spec.index()));
        }
        *slot = Some(stream);
    }
    // Validated shards surrender their rows, so the interleave below
    // moves every row exactly once — no clones.
    let mut shard_rows = Vec::with_capacity(count);
    for (i, slot) in by_index.into_iter().enumerate() {
        let stream = slot.ok_or(MergeError::MissingShard(i))?;
        let expected = stream.spec.len_of(total);
        if stream.rows.len() != expected {
            return Err(MergeError::ShardLength {
                index: i,
                expected,
                got: stream.rows.len(),
            });
        }
        shard_rows.push(stream.rows.into_iter());
    }
    let mut merged = Vec::with_capacity(total);
    for i in 0..total {
        merged.push(
            shard_rows[i % count]
                .next()
                // lint:allow(R001): each shard's row count was checked
                // against the partition just above.
                .expect("shard lengths validated against the partition"),
        );
    }
    let mut keys: Vec<String> = merged.iter().map(TrialRow::trial_key).collect();
    keys.sort_unstable();
    for pair in keys.windows(2) {
        if pair[0] == pair[1] {
            return Err(MergeError::DuplicateTrial(pair[0].clone()));
        }
    }
    Ok((campaign, merged))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::Executor;
    use crate::grid::Grid;
    use crate::report::{rows_to_jsonl, TrialRow};
    use crate::scenario::NoiseSpec;
    use ichannels::channel::ChannelKind;
    use ichannels_meter::export::jsonl_to_string;

    #[test]
    fn parse_accepts_well_formed_specs() {
        assert_eq!(
            ShardSpec::parse("0/3").unwrap(),
            ShardSpec::new(0, 3).unwrap()
        );
        assert_eq!(ShardSpec::parse("2/3").unwrap().index(), 2);
        assert_eq!(ShardSpec::parse("0/1").unwrap(), ShardSpec::full());
        assert!(ShardSpec::parse("0/1").unwrap().is_full());
        assert_eq!(ShardSpec::parse("1/4").unwrap().to_string(), "1/4");
    }

    #[test]
    fn parse_rejects_malformed_specs() {
        for bad in ["", "3", "0/0", "3/2", "3/3", "-1/3", "a/3", "0/b", "1/2/3"] {
            let err = ShardSpec::parse(bad).expect_err(bad);
            assert!(err.to_string().starts_with("invalid shard spec"), "{err}");
        }
    }

    #[test]
    fn shards_cover_the_list_exactly_once() {
        let items: Vec<usize> = (0..17).collect();
        for count in 1..=8 {
            let mut seen = Vec::new();
            for index in 0..count {
                let spec = ShardSpec::new(index, count).unwrap();
                let part = spec.select(&items);
                assert_eq!(part.len(), spec.len_of(items.len()));
                seen.extend(part);
            }
            seen.sort_unstable();
            assert_eq!(seen, items, "count {count}");
        }
    }

    #[test]
    fn file_stems_distinguish_shards() {
        assert_eq!(ShardSpec::full().file_stem("demo"), "demo");
        assert_eq!(
            ShardSpec::new(1, 3).unwrap().file_stem("demo"),
            "demo_shard1of3"
        );
    }

    fn rows_for(grid: &Grid) -> Vec<TrialRow> {
        Executor::serial()
            .run(&grid.scenarios())
            .iter()
            .map(TrialRow::from_record)
            .collect()
    }

    fn sharded_text(rows: &[TrialRow], spec: ShardSpec, total: usize) -> String {
        let mut doc = jsonl_to_string([spec.header_row("demo", total)].iter());
        doc.push_str(&rows_to_jsonl(&spec.select(rows)));
        doc
    }

    fn demo_grid() -> Grid {
        Grid::new()
            .kinds(&[ChannelKind::Thread, ChannelKind::Cores])
            .noises(vec![NoiseSpec::Quiet, NoiseSpec::Low])
            .trials(2)
            .payload_symbols(4)
    }

    #[test]
    fn merge_reassembles_enumeration_order() {
        let rows = rows_for(&demo_grid());
        let total = rows.len();
        assert_eq!(total, 8);
        let streams: Vec<ShardStream> = (0..3)
            .map(|i| {
                let spec = ShardSpec::new(i, 3).unwrap();
                ShardStream::parse("mem", &sharded_text(&rows, spec, total)).expect("parses")
            })
            .collect();
        // Shuffle the stream order; merge keys off headers, not order.
        let shuffled = vec![streams[2].clone(), streams[0].clone(), streams[1].clone()];
        let (campaign, merged) = merge_streams(shuffled).expect("merges");
        assert_eq!(campaign, "demo");
        assert_eq!(rows_to_jsonl(&merged), rows_to_jsonl(&rows));
    }

    #[test]
    fn merge_detects_missing_duplicate_and_short_shards() {
        let rows = rows_for(&demo_grid());
        let total = rows.len();
        let stream = |i: usize| {
            let spec = ShardSpec::new(i, 3).unwrap();
            ShardStream::parse("mem", &sharded_text(&rows, spec, total)).expect("parses")
        };
        assert_eq!(merge_streams(vec![]), Err(MergeError::NoStreams));
        // A lone 1/1 stream is already complete: merging it must fail
        // loudly rather than writing a blessed-looking copy.
        let full = ShardSpec::full();
        let lone = ShardStream::parse("mem", &sharded_text(&rows, full, total)).expect("parses");
        let err = merge_streams(vec![lone]).expect_err("single 1/1 stream");
        assert_eq!(err, MergeError::SingleStream("demo".to_string()));
        assert!(err.to_string().contains("already the complete"), "{err}");
        // Wrong stream count.
        assert!(matches!(
            merge_streams(vec![stream(0), stream(1)]),
            Err(MergeError::InconsistentHeaders(_))
        ));
        // Duplicate shard index.
        assert_eq!(
            merge_streams(vec![stream(0), stream(1), stream(1)]),
            Err(MergeError::DuplicateShard(1))
        );
        // A shard with a dropped trailing row.
        let mut short = stream(2);
        short.rows.pop();
        assert_eq!(
            merge_streams(vec![stream(0), stream(1), short]),
            Err(MergeError::ShardLength {
                index: 2,
                expected: 2,
                got: 1
            })
        );
        // A duplicated cell smuggled in at the right length.
        let mut dup = stream(2);
        dup.rows[1] = dup.rows[0].clone();
        let err = merge_streams(vec![stream(0), stream(1), dup]).unwrap_err();
        assert!(matches!(err, MergeError::DuplicateTrial(_)), "{err}");
    }

    #[test]
    fn unsharded_streams_are_rejected() {
        let rows = rows_for(&Grid::new().payload_symbols(4));
        let err = ShardStream::parse("mem", &rows_to_jsonl(&rows)).unwrap_err();
        assert!(matches!(err, MergeError::MissingHeader(_)), "{err}");
    }
}

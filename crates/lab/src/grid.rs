//! Cartesian sweep construction: a [`Grid`] multiplies axis lists into
//! the scenarios of a campaign.
//!
//! Every axis has a sensible default so callers only override what they
//! sweep. Per-trial seeds are derived from a stable hash of the cell
//! key and the trial index (not from enumeration order), so filtering
//! unsupported combinations — e.g. IccSMTcovert on the SMT-less Coffee
//! Lake — does not shift the seeds of the remaining cells.

use ichannels::channel::ChannelKind;
use ichannels::mitigations::Mitigation;

use crate::scenario::{
    mix, AppSpec, ChannelSelect, Knob, NoiseSpec, PayloadSpec, PlatformId, ReceiverSpec, Scenario,
};

/// FNV-1a over a string, for stable per-cell seed derivation (shared
/// with the fuzz harness, which derives trial seeds by the same
/// cell-key rule so a shrunk reproducer runs exactly the trial a grid
/// sweep of that cell would run).
pub(crate) fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// One axis of a [`Grid`], rendered for machine consumption: the axis
/// name plus the stable labels of its values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AxisSummary {
    /// Axis name (`"platforms"`, `"channels"`, `"noises"`, …).
    pub axis: &'static str,
    /// The axis values' cell-key labels, in enumeration order.
    pub values: Vec<String>,
}

/// A declarative Cartesian sweep over scenario axes.
///
/// # Examples
///
/// ```
/// use ichannels_lab::grid::Grid;
/// use ichannels_lab::scenario::{ChannelSelect, NoiseSpec, PlatformId};
/// use ichannels::channel::ChannelKind;
///
/// let grid = Grid::new()
///     .platforms(vec![PlatformId::CannonLake, PlatformId::CoffeeLake])
///     .kinds(&[ChannelKind::Thread, ChannelKind::Smt, ChannelKind::Cores])
///     .noises(vec![NoiseSpec::Quiet, NoiseSpec::Low])
///     .payload_symbols(8);
/// // 2 platforms × 3 kinds × 2 noises = 12 raw cells; Coffee Lake has
/// // no SMT, so 2 cells are filtered out.
/// assert_eq!(grid.cardinality(), 12);
/// assert_eq!(grid.scenarios().len(), 10);
/// ```
#[derive(Debug, Clone)]
pub struct Grid {
    platforms: Vec<PlatformId>,
    channels: Vec<ChannelSelect>,
    noises: Vec<NoiseSpec>,
    mitigation_sets: Vec<Vec<Mitigation>>,
    apps: Vec<Option<AppSpec>>,
    knobs: Vec<Option<Knob>>,
    receivers: Vec<ReceiverSpec>,
    payloads: Vec<PayloadSpec>,
    payload_symbols: usize,
    calib_reps: usize,
    freqs: Vec<Option<f64>>,
    trials: u32,
    base_seed: u64,
}

impl Default for Grid {
    fn default() -> Self {
        Grid::new()
    }
}

impl Grid {
    /// A 1×1×… grid: quiet Cannon Lake, same-thread channel, no
    /// mitigations, no app, 24 random symbols, one trial.
    pub fn new() -> Self {
        Grid {
            platforms: vec![PlatformId::CannonLake],
            channels: vec![ChannelSelect::Icc(ChannelKind::Thread)],
            noises: vec![NoiseSpec::Quiet],
            mitigation_sets: vec![vec![]],
            apps: vec![None],
            knobs: vec![None],
            receivers: vec![ReceiverSpec::Calibrated],
            payloads: vec![PayloadSpec::Random],
            payload_symbols: 24,
            calib_reps: 2,
            freqs: vec![None],
            trials: 1,
            base_seed: 0x1C4A_11AB,
        }
    }

    /// Sets the platform axis.
    pub fn platforms(mut self, platforms: Vec<PlatformId>) -> Self {
        assert!(!platforms.is_empty(), "platform axis must not be empty");
        self.platforms = platforms;
        self
    }

    /// Sets the channel axis.
    pub fn channels(mut self, channels: Vec<ChannelSelect>) -> Self {
        assert!(!channels.is_empty(), "channel axis must not be empty");
        self.channels = channels;
        self
    }

    /// Convenience: channel axis from plain [`ChannelKind`]s (4-level
    /// IChannels).
    pub fn kinds(self, kinds: &[ChannelKind]) -> Self {
        self.channels(kinds.iter().map(|&k| ChannelSelect::Icc(k)).collect())
    }

    /// Sets the noise axis.
    pub fn noises(mut self, noises: Vec<NoiseSpec>) -> Self {
        assert!(!noises.is_empty(), "noise axis must not be empty");
        self.noises = noises;
        self
    }

    /// Sets the mitigation-set axis (each entry is one set to apply
    /// together; the empty set is the unmitigated baseline).
    pub fn mitigation_sets(mut self, sets: Vec<Vec<Mitigation>>) -> Self {
        assert!(!sets.is_empty(), "mitigation axis must not be empty");
        self.mitigation_sets = sets;
        self
    }

    /// Sets the concurrent-app axis (`None` entries run undisturbed).
    pub fn apps(mut self, apps: Vec<Option<AppSpec>>) -> Self {
        assert!(!apps.is_empty(), "app axis must not be empty");
        self.apps = apps;
        self
    }

    /// Sets the design-knob axis (`None` entries run stock hardware).
    pub fn knobs(mut self, knobs: Vec<Option<Knob>>) -> Self {
        assert!(!knobs.is_empty(), "knob axis must not be empty");
        self.knobs = knobs;
        self
    }

    /// Sets the receiver axis ([`ReceiverSpec::Calibrated`] entries run
    /// the default platform-calibrated receiver).
    pub fn receivers(mut self, receivers: Vec<ReceiverSpec>) -> Self {
        assert!(!receivers.is_empty(), "receiver axis must not be empty");
        self.receivers = receivers;
        self
    }

    /// Sets the payload-shape axis.
    pub fn payloads(mut self, payloads: Vec<PayloadSpec>) -> Self {
        assert!(!payloads.is_empty(), "payload axis must not be empty");
        self.payloads = payloads;
        self
    }

    /// Sets the number of symbols per trial.
    pub fn payload_symbols(mut self, n: usize) -> Self {
        assert!(n > 0, "payload must contain at least one symbol");
        self.payload_symbols = n;
        self
    }

    /// Sets calibration repetitions per level.
    pub fn calib_reps(mut self, reps: usize) -> Self {
        assert!(reps > 0, "calibration needs at least one repetition");
        self.calib_reps = reps;
        self
    }

    /// Pins every scenario at `ghz` instead of the platform default.
    pub fn freq_ghz(self, ghz: f64) -> Self {
        assert!(ghz > 0.0, "frequency must be positive");
        self.freqs(vec![Some(ghz)])
    }

    /// Sets the pinned-frequency axis (`None` entries run the platform
    /// default).
    pub fn freqs(mut self, freqs: Vec<Option<f64>>) -> Self {
        assert!(!freqs.is_empty(), "frequency axis must not be empty");
        assert!(
            freqs.iter().flatten().all(|&g| g > 0.0),
            "frequencies must be positive"
        );
        self.freqs = freqs;
        self
    }

    /// Sets the number of independent trials per cell.
    pub fn trials(mut self, trials: u32) -> Self {
        assert!(trials > 0, "need at least one trial per cell");
        self.trials = trials;
        self
    }

    /// Sets the campaign master seed.
    pub fn base_seed(mut self, seed: u64) -> Self {
        self.base_seed = seed;
        self
    }

    /// Independent trials per cell.
    pub fn trials_per_cell(&self) -> u32 {
        self.trials
    }

    /// Payload symbols per trial.
    pub fn payload_symbols_per_trial(&self) -> usize {
        self.payload_symbols
    }

    /// The grid's axes with the stable labels of their values, in
    /// enumeration order — the machine-readable shape `campaign list
    /// --json` exports so a dispatcher can enumerate work without
    /// parsing human output. Off-default values carry exactly the
    /// cell-key segment they produce (`f2`, `rx-legacy`, `slew4.8`);
    /// default values render placeholders (`default`, `stock`,
    /// `rx-cal`) that by the seed-stability rule append no cell-key
    /// segment at all, while `noapp`/`none`/noise/payload labels land
    /// verbatim in the fixed seven-segment key prefix.
    pub fn axes(&self) -> Vec<AxisSummary> {
        let axis = |axis: &'static str, values: Vec<String>| AxisSummary { axis, values };
        vec![
            axis(
                "platforms",
                self.platforms
                    .iter()
                    .map(|p| p.label().to_string())
                    .collect(),
            ),
            axis(
                "freqs_ghz",
                self.freqs
                    .iter()
                    .map(|f| f.map_or_else(|| "default".to_string(), |g| format!("f{g}")))
                    .collect(),
            ),
            axis(
                "channels",
                self.channels.iter().map(|c| c.label()).collect(),
            ),
            axis("noises", self.noises.iter().map(|n| n.label()).collect()),
            axis(
                "mitigations",
                self.mitigation_sets
                    .iter()
                    .map(|set| crate::scenario::mitigations_label(set))
                    .collect(),
            ),
            axis(
                "apps",
                self.apps
                    .iter()
                    .map(|a| a.map_or_else(|| "noapp".to_string(), AppSpec::label))
                    .collect(),
            ),
            axis(
                "knobs",
                self.knobs
                    .iter()
                    .map(|k| k.map_or_else(|| "stock".to_string(), Knob::label))
                    .collect(),
            ),
            axis(
                "receivers",
                self.receivers.iter().map(|r| r.label()).collect(),
            ),
            axis(
                "payloads",
                self.payloads.iter().map(|p| p.label()).collect(),
            ),
        ]
    }

    /// Raw Cartesian cardinality — the full cross product of all axes
    /// times the trial count, before platform-support filtering.
    pub fn cardinality(&self) -> usize {
        self.platforms.len()
            * self.freqs.len()
            * self.channels.len()
            * self.noises.len()
            * self.mitigation_sets.len()
            * self.apps.len()
            * self.knobs.len()
            * self.receivers.len()
            * self.payloads.len()
            * self.trials as usize
    }

    /// Enumerates the runnable scenarios in deterministic axis order
    /// (platform → freq → channel → noise → mitigations → app → knob →
    /// receiver → payload → trial), dropping combinations the platform
    /// cannot host.
    pub fn scenarios(&self) -> Vec<Scenario> {
        let mut out = Vec::with_capacity(self.cardinality());
        for &platform in &self.platforms {
            for &freq_ghz in &self.freqs {
                for &channel in &self.channels {
                    for &noise in &self.noises {
                        for mitigations in &self.mitigation_sets {
                            for &app in &self.apps {
                                for &knob in &self.knobs {
                                    for &receiver in &self.receivers {
                                        for &payload in &self.payloads {
                                            for trial in 0..self.trials {
                                                let mut s = Scenario {
                                                    platform,
                                                    channel,
                                                    noise,
                                                    mitigations: mitigations.clone(),
                                                    app,
                                                    knob,
                                                    receiver,
                                                    payload,
                                                    payload_symbols: self.payload_symbols,
                                                    calib_reps: self.calib_reps,
                                                    freq_ghz,
                                                    trial,
                                                    seed: 0,
                                                };
                                                if !s.supported() {
                                                    continue;
                                                }
                                                s.seed = mix(
                                                    self.base_seed ^ fnv1a(&s.cell_key()),
                                                    u64::from(trial),
                                                );
                                                out.push(s);
                                            }
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_grid_is_one_cell() {
        let g = Grid::new();
        assert_eq!(g.cardinality(), 1);
        assert_eq!(g.scenarios().len(), 1);
    }

    #[test]
    fn cardinality_is_the_full_cross_product() {
        let g = Grid::new()
            .platforms(vec![PlatformId::CannonLake, PlatformId::CoffeeLake])
            .kinds(&[ChannelKind::Thread, ChannelKind::Smt, ChannelKind::Cores])
            .noises(vec![NoiseSpec::Quiet, NoiseSpec::Low])
            .trials(3);
        assert_eq!(g.cardinality(), 2 * 3 * 2 * 3);
        // Coffee Lake cannot host IccSMTcovert: 2 noise × 3 trials drop.
        assert_eq!(g.scenarios().len(), g.cardinality() - 6);
    }

    #[test]
    fn seeds_are_stable_under_axis_filtering() {
        let sweep = Grid::new()
            .platforms(vec![PlatformId::CannonLake, PlatformId::CoffeeLake])
            .kinds(&[ChannelKind::Thread, ChannelKind::Smt]);
        let narrow = Grid::new()
            .platforms(vec![PlatformId::CannonLake, PlatformId::CoffeeLake])
            .kinds(&[ChannelKind::Thread]);
        let seed_of = |scenarios: &[Scenario], key: &str| {
            scenarios
                .iter()
                .find(|s| s.cell_key().contains(key))
                .map(|s| s.seed)
                .expect("cell present")
        };
        let wide = sweep.scenarios();
        let thin = narrow.scenarios();
        // The Thread cells keep their seeds whether or not the SMT axis
        // value (and its filtered Coffee Lake hole) is present.
        assert_eq!(
            seed_of(&wide, "coffee_lake/IccThreadCovert"),
            seed_of(&thin, "coffee_lake/IccThreadCovert"),
        );
    }

    #[test]
    fn baselines_only_materialize_in_their_published_setup() {
        use crate::scenario::{BaselineKind, ChannelSelect};
        // Baselines ignore platform/noise axes, so off-default cells
        // must be filtered rather than exported with false labels.
        let g = Grid::new()
            .platforms(vec![PlatformId::CannonLake, PlatformId::SkylakeServer])
            .channels(vec![
                ChannelSelect::Icc(ChannelKind::Thread),
                ChannelSelect::Baseline(BaselineKind::NetSpectre),
            ])
            .noises(vec![NoiseSpec::Quiet, NoiseSpec::High])
            .trials(2);
        let scenarios = g.scenarios();
        let baselines: Vec<_> = scenarios
            .iter()
            .filter(|s| matches!(s.channel, ChannelSelect::Baseline(_)))
            .collect();
        assert_eq!(baselines.len(), 1, "one honest baseline cell");
        let b = baselines[0];
        assert_eq!(b.platform, PlatformId::CannonLake);
        assert_eq!(b.noise, NoiseSpec::Quiet);
        assert_eq!(b.trial, 0);
        // The IChannel cells keep the full sweep: 2 platforms × 2
        // noises × 2 trials.
        assert_eq!(scenarios.len() - 1, 8);
    }

    #[test]
    fn freq_and_knob_axes_multiply_cardinality() {
        let g = Grid::new()
            .freqs(vec![Some(1.0), Some(1.2), Some(1.4)])
            .knobs(vec![None, Some(Knob::VrSlew(4.8))])
            .trials(2);
        assert_eq!(g.cardinality(), 3 * 2 * 2);
        assert_eq!(g.scenarios().len(), 12);
        // Every cell key is distinct (freq/knob segments included).
        let mut keys: Vec<String> = g.scenarios().iter().map(Scenario::cell_key).collect();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), 6);
    }

    #[test]
    fn axes_render_stable_labels() {
        let g = Grid::new()
            .platforms(vec![PlatformId::CannonLake, PlatformId::SkylakeServer])
            .kinds(&[ChannelKind::Thread, ChannelKind::Cores])
            .noises(vec![NoiseSpec::Quiet, NoiseSpec::Low])
            .freqs(vec![None, Some(2.0)])
            .trials(3);
        let axes = g.axes();
        let of = |name: &str| {
            axes.iter()
                .find(|a| a.axis == name)
                .unwrap_or_else(|| panic!("axis {name} missing"))
                .values
                .clone()
        };
        assert_eq!(of("platforms"), ["cannon_lake", "skylake_server"]);
        assert_eq!(of("channels"), ["IccThreadCovert", "IccCoresCovert"]);
        assert_eq!(of("noises"), ["quiet", "low"]);
        assert_eq!(of("freqs_ghz"), ["default", "f2"]);
        assert_eq!(of("mitigations"), ["none"]);
        assert_eq!(of("apps"), ["noapp"]);
        assert_eq!(of("knobs"), ["stock"]);
        assert_eq!(of("receivers"), ["rx-cal"]);
        assert_eq!(of("payloads"), ["random"]);
        assert_eq!(g.trials_per_cell(), 3);
        assert_eq!(g.payload_symbols_per_trial(), 24);
        // The axis product times trials is the raw cardinality.
        let product: usize = axes.iter().map(|a| a.values.len()).product();
        assert_eq!(product * 3, g.cardinality());
    }

    #[test]
    fn trials_get_distinct_seeds() {
        let g = Grid::new().trials(4);
        let scenarios = g.scenarios();
        let mut seeds: Vec<u64> = scenarios.iter().map(|s| s.seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 4, "trial seeds must differ");
    }

    #[test]
    fn base_seed_changes_every_trial_seed() {
        let a = Grid::new().trials(2).base_seed(1).scenarios();
        let b = Grid::new().trials(2).base_seed(2).scenarios();
        for (x, y) in a.iter().zip(&b) {
            assert_ne!(x.seed, y.seed);
        }
    }
}

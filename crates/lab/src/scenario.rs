//! The [`Scenario`] descriptor: one fully-specified simulated run.
//!
//! A scenario is pure data — platform, channel selection, level
//! alphabet, noise, mitigation set, concurrent-app interference, payload
//! and seeding — so it can be enumerated by a [`crate::grid::Grid`],
//! shipped to a worker thread, and executed hermetically. Every source
//! of randomness inside a trial (symbol stream, measurement jitter, OS
//! noise, app arrivals) is derived from the scenario's single `seed`,
//! which makes parallel execution bit-identical to serial execution.

use ichannels::baselines::dfscovert::DfsCovertChannel;
use ichannels::baselines::netspectre::NetSpectreChannel;
use ichannels::baselines::powert::PowerTChannel;
use ichannels::baselines::turbocc::TurboCcChannel;
use ichannels::ber::random_symbols;
use ichannels::channel::{ChannelConfig, ChannelKind, IChannel, ReceiverCalibration, ReceiverMode};
use ichannels::extended::{LevelAlphabet, MultiLevelChannel};
use ichannels::mitigations::Mitigation;
use ichannels::symbols::Symbol;
use ichannels_meter::stats::ConfusionMatrix;
use ichannels_pdn::current::CoreActivity;
use ichannels_soc::config::{PlatformSpec, SocConfig};
use ichannels_soc::noise::NoiseConfig;
use ichannels_soc::sim::Soc;
use ichannels_uarch::idq::{Idq, SmtId, ThreadDemand};
use ichannels_uarch::ipc::{nominal_ipc, THROTTLE_BLOCKED_FRACTION};
use ichannels_uarch::isa::InstClass;
use ichannels_uarch::time::{Freq, SimTime};
use ichannels_workload::apps::{RandomPhiApp, SevenZipApp};
use ichannels_workload::loops::{instructions_for_duration, MeasuredLoop, PrecededLoop, Recorder};

use crate::report::{TrialMetrics, TrialRecord};

/// SplitMix64 step — the seed-derivation mixer used throughout the lab.
pub(crate) fn mix(seed: u64, stream: u64) -> u64 {
    let mut z = seed
        .wrapping_add(stream.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A catalog platform, by value-semantic id (the full [`PlatformSpec`]
/// is materialized per trial).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PlatformId {
    /// Cannon Lake i3-8121U — 2C/4T mobile, the paper's SMT platform.
    CannonLake,
    /// Coffee Lake i7-9700K — 8C/8T desktop.
    CoffeeLake,
    /// Haswell i7-4770K — 4C/8T desktop, FIVR, no AVX power gate.
    Haswell,
    /// Skylake-SP Xeon — the §6.4 28C/56T server extrapolation.
    SkylakeServer,
}

impl PlatformId {
    /// Every platform in the catalog.
    pub const ALL: [PlatformId; 4] = [
        PlatformId::CannonLake,
        PlatformId::CoffeeLake,
        PlatformId::Haswell,
        PlatformId::SkylakeServer,
    ];

    /// The client platforms (paper §5.1).
    pub const CLIENTS: [PlatformId; 3] = [
        PlatformId::CannonLake,
        PlatformId::CoffeeLake,
        PlatformId::Haswell,
    ];

    /// Materializes the platform description.
    pub fn spec(self) -> PlatformSpec {
        match self {
            PlatformId::CannonLake => PlatformSpec::cannon_lake(),
            PlatformId::CoffeeLake => PlatformSpec::coffee_lake(),
            PlatformId::Haswell => PlatformSpec::haswell(),
            PlatformId::SkylakeServer => PlatformSpec::skylake_server(),
        }
    }

    /// Short label used in cell keys and export rows.
    pub const fn label(self) -> &'static str {
        match self {
            PlatformId::CannonLake => "cannon_lake",
            PlatformId::CoffeeLake => "coffee_lake",
            PlatformId::Haswell => "haswell",
            PlatformId::SkylakeServer => "skylake_server",
        }
    }

    /// Default pinned characterization frequency (GHz) — the paper pins
    /// Cannon Lake at 1.4 GHz; the others are swept at 2.0 GHz, their
    /// shared low-noise operating point.
    pub const fn default_freq_ghz(self) -> f64 {
        match self {
            PlatformId::CannonLake => 1.4,
            _ => 2.0,
        }
    }
}

/// The sender's level alphabet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AlphabetSpec {
    /// The paper's four PHI levels (2 bits/transaction).
    Paper4,
    /// Six vector levels (≈2.58 bits/transaction raw).
    Phi6,
    /// All seven classes (≈2.81 bits/transaction raw).
    Full7,
}

impl AlphabetSpec {
    /// Materializes the alphabet.
    pub fn alphabet(self) -> LevelAlphabet {
        match self {
            AlphabetSpec::Paper4 => LevelAlphabet::paper4(),
            AlphabetSpec::Phi6 => LevelAlphabet::phi6(),
            AlphabetSpec::Full7 => LevelAlphabet::full7(),
        }
    }

    /// Number of levels.
    pub const fn levels(self) -> usize {
        match self {
            AlphabetSpec::Paper4 => 4,
            AlphabetSpec::Phi6 => 6,
            AlphabetSpec::Full7 => 7,
        }
    }

    /// Short label used in cell keys.
    pub const fn label(self) -> &'static str {
        match self {
            AlphabetSpec::Paper4 => "L4",
            AlphabetSpec::Phi6 => "L6",
            AlphabetSpec::Full7 => "L7",
        }
    }
}

/// A state-of-the-art comparison channel (Figure 12 / Table 2).
///
/// Baselines run their published default setup; the scenario's
/// platform, noise, and mitigation axes do not apply to them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BaselineKind {
    /// NetSpectre's single-level AVX gadget.
    NetSpectre,
    /// DFS covert channel (~20 b/s).
    DfsCovert,
    /// TurboCC (~61 b/s).
    TurboCc,
    /// POWERT (~122 b/s).
    Powert,
}

impl BaselineKind {
    /// Display name matching the paper.
    pub const fn name(self) -> &'static str {
        match self {
            BaselineKind::NetSpectre => "NetSpectre",
            BaselineKind::DfsCovert => "DFScovert",
            BaselineKind::TurboCc => "TurboCC",
            BaselineKind::Powert => "POWERT",
        }
    }
}

/// Condition of an IDQ undelivered-slots probe (Figure 11): what the
/// cycle-level IDQ model executes and which hardware thread is observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IdqCondition {
    /// Throttled Heavy256 iteration, observed on the issuing thread.
    Throttled,
    /// Unthrottled iteration, observed on the issuing thread.
    Unthrottled,
    /// Throttled iteration, observed from the scalar SMT sibling.
    SmtSibling,
}

impl IdqCondition {
    /// The three Figure 11 conditions.
    pub const ALL: [IdqCondition; 3] = [
        IdqCondition::Throttled,
        IdqCondition::Unthrottled,
        IdqCondition::SmtSibling,
    ];

    /// Short label used in cell keys.
    pub const fn label(self) -> &'static str {
        match self {
            IdqCondition::Throttled => "idq-throttled",
            IdqCondition::Unthrottled => "idq-unthrottled",
            IdqCondition::SmtSibling => "idq-sibling",
        }
    }
}

/// Cycles per IDQ probe window (Figure 11's measurement window).
pub const IDQ_PROBE_WINDOW_CYCLES: u64 = 1_000;

/// A direct micro-architectural measurement — no symbol stream, the
/// characterization figures (§5) expressed as engine cells. The
/// measurement lands in [`crate::report::TrialMetrics::probe_value`]
/// (and `probe_aux` where a probe defines a second output).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProbeKind {
    /// Throttling period (µs) of a `class` loop running on `cores`
    /// cores concurrently (Figures 8(a), 10(a)).
    Tp {
        /// Instruction class of the measured loop.
        class: InstClass,
        /// Number of cores running the loop concurrently.
        cores: u8,
    },
    /// TP (µs) of a Heavy512 loop preceded by a `prev` loop
    /// (Figure 10(b)).
    PrecededTp {
        /// The class executed immediately before the measured loop.
        prev: InstClass,
    },
    /// Duration (µs) of back-to-back Heavy256 iteration `iter` of three
    /// — the AVX power-gate wake experiment (Figure 8(b,c)).
    GateIteration {
        /// Which of the three iterations is reported (0, 1, or 2).
        iter: u8,
    },
    /// Normalized IDQ undelivered slots under `IdqCondition`
    /// (Figure 11).
    Idq(IdqCondition),
    /// Receiver-measured duration (TSC cycles) of one transmitted
    /// sender level over the same-thread channel (Figure 13).
    LevelDuration {
        /// The transmitted symbol value (0..4).
        level: u8,
    },
    /// Projected (unprotected) operating point: Vcc (mV) in
    /// `probe_value`, Icc (A) in `probe_aux` (Figure 7(a)).
    OperatingPoint {
        /// Instruction class executed on the active cores.
        class: InstClass,
        /// Projected core frequency in MHz (exact, not P-state-snapped).
        freq_mhz: u32,
        /// Number of active cores.
        cores: u8,
    },
}

impl ProbeKind {
    /// Label used in cell keys and export rows.
    pub fn label(self) -> String {
        match self {
            ProbeKind::Tp { class, cores } => format!("tp-{class}-c{cores}"),
            ProbeKind::PrecededTp { prev } => format!("prec-{prev}"),
            ProbeKind::GateIteration { iter } => format!("gate-i{iter}"),
            ProbeKind::Idq(cond) => cond.label().to_string(),
            ProbeKind::LevelDuration { level } => format!("dwell{level}"),
            ProbeKind::OperatingPoint {
                class,
                freq_mhz,
                cores,
            } => format!("op-{class}-{freq_mhz}MHz-c{cores}"),
        }
    }
}

/// A design-parameter override — the ablation axis: which property of
/// the hardware gives the channel its capacity, and which knob a
/// defender would want to turn.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Knob {
    /// VR slew rate override (mV/µs) — faster regulators compress the
    /// TP levels (the §7 LDO argument, quantified).
    VrSlew(f64),
    /// License-hysteresis (reset-time) override (µs). The protocol
    /// adapts: the slot period becomes reset-time + 40 µs transaction.
    ResetTimeUs(f64),
    /// Receiver measurement-jitter sigma override (ns).
    MeasurementJitterNs(f64),
}

impl Knob {
    /// Label used in cell keys and export rows.
    pub fn label(self) -> String {
        match self {
            Knob::VrSlew(v) => format!("slew{v}"),
            Knob::ResetTimeUs(v) => format!("reset{v}"),
            Knob::MeasurementJitterNs(v) => format!("jitter{v}"),
        }
    }

    /// Applies the override to a channel configuration.
    pub fn apply(self, cfg: &mut ChannelConfig) {
        match self {
            Knob::VrSlew(v) => cfg.soc.platform.vr_model.slew_mv_per_us = v,
            Knob::ResetTimeUs(us) => {
                cfg.soc.platform.reset_time = SimTime::from_us(us);
                cfg.slot_period = SimTime::from_us(us + 40.0);
            }
            Knob::MeasurementJitterNs(ns) => {
                cfg.measurement_jitter = SimTime::from_ns(ns);
            }
        }
    }
}

/// The receiver a trial decodes with — the `receiver` Grid axis.
///
/// The default ([`ReceiverSpec::Calibrated`]) is the platform-
/// calibrated adaptive receiver and adds **no** cell-key segment, so
/// campaigns that do not sweep the receiver keep their PR-1/2 cell
/// keys and seeds; off-default receivers append an `rx-…` segment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ReceiverSpec {
    /// Platform-calibrated adaptive receiver
    /// ([`ReceiverCalibration::for_channel`] — identity tuning on every
    /// client rail, windowed repeat-and-vote on the compressed server
    /// rail).
    Calibrated,
    /// The fixed single-sample receiver (pre-calibration behavior, the
    /// A/B baseline).
    Legacy,
    /// An explicit window×votes override (receiver-calibration sweeps).
    Fixed {
        /// Integration-window multiplier.
        window_scale: f64,
        /// Repeat-and-vote transactions per symbol.
        votes: u32,
    },
}

impl ReceiverSpec {
    /// True for the default axis value (no cell-key segment).
    pub const fn is_default(self) -> bool {
        matches!(self, ReceiverSpec::Calibrated)
    }

    /// Label used in cell keys (off-default values only — cell keys
    /// never include the `Calibrated` arm's `rx-cal`, which exists for
    /// display purposes; the default receiver adds no key segment by
    /// the seed-stability rule).
    pub fn label(self) -> String {
        match self {
            ReceiverSpec::Calibrated => "rx-cal".to_string(),
            ReceiverSpec::Legacy => "rx-legacy".to_string(),
            ReceiverSpec::Fixed {
                window_scale,
                votes,
            } => format!("rx-w{window_scale}v{votes}"),
        }
    }

    /// The core-channel receiver mode this axis value selects.
    pub fn mode(self) -> ReceiverMode {
        match self {
            ReceiverSpec::Calibrated => ReceiverMode::Calibrated,
            ReceiverSpec::Legacy => ReceiverMode::Legacy,
            ReceiverSpec::Fixed {
                window_scale,
                votes,
            } => ReceiverMode::Fixed(ReceiverCalibration {
                window_scale,
                votes,
            }),
        }
    }
}

/// Which channel a scenario drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ChannelSelect {
    /// One of the three IChannels with the paper's 4-level alphabet.
    Icc(ChannelKind),
    /// An IChannel generalized to a wider level alphabet.
    MultiLevel(ChannelKind, AlphabetSpec),
    /// A state-of-the-art baseline (fixed published setup).
    Baseline(BaselineKind),
    /// A direct micro-architectural measurement (no symbol stream).
    Probe(ProbeKind),
}

impl ChannelSelect {
    /// Label used in cell keys and export rows.
    pub fn label(self) -> String {
        match self {
            ChannelSelect::Icc(kind) => kind.name().to_string(),
            ChannelSelect::MultiLevel(kind, alpha) => {
                format!("{}-{}", kind.name(), alpha.label())
            }
            ChannelSelect::Baseline(b) => b.name().to_string(),
            ChannelSelect::Probe(p) => p.label(),
        }
    }
}

/// Converts a measured loop-duration inflation into a throttling
/// period: during the TP the loop retires at 1/4 rate, so the inflation
/// is `TP · 3/4` (provided the loop outlasts the TP) and
/// `TP = inflation / (3/4)`.
pub fn inflation_to_tp_us(measured_us: f64, base_us: f64) -> f64 {
    (measured_us - base_us).max(0.0) / THROTTLE_BLOCKED_FRACTION
}

/// OS-noise configuration of a scenario.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum NoiseSpec {
    /// No OS noise.
    Quiet,
    /// The paper's low-noise client system (§6.3).
    Low,
    /// A highly noisy system (thousands of events/s).
    High,
    /// Interrupts only, at the given rate (Figure 14(a)).
    Interrupts(f64),
    /// Context switches only, at the given rate (Figure 14(a)).
    CtxSwitches(f64),
}

impl NoiseSpec {
    /// Materializes the noise configuration.
    pub fn config(self) -> NoiseConfig {
        match self {
            NoiseSpec::Quiet => NoiseConfig::quiet(),
            NoiseSpec::Low => NoiseConfig::low(),
            NoiseSpec::High => NoiseConfig::high(),
            NoiseSpec::Interrupts(rate) => NoiseConfig::interrupts_only(rate),
            NoiseSpec::CtxSwitches(rate) => NoiseConfig::ctx_switches_only(rate),
        }
    }

    /// Label used in cell keys and export rows.
    pub fn label(self) -> String {
        match self {
            NoiseSpec::Quiet => "quiet".to_string(),
            NoiseSpec::Low => "low".to_string(),
            NoiseSpec::High => "high".to_string(),
            NoiseSpec::Interrupts(rate) => format!("irq{rate}"),
            NoiseSpec::CtxSwitches(rate) => format!("ctx{rate}"),
        }
    }
}

/// What a concurrent interfering application executes (§6.3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AppKind {
    /// Random PHIs drawn from the four sender levels.
    RandomLevels,
    /// PHIs of one fixed level (the Figure 14(b) matrix rows).
    FixedLevel(u8),
    /// The 7-zip-like AVX2 compressor.
    SevenZip,
}

/// A concurrent application sharing the SoC with the channel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AppSpec {
    /// What the app executes.
    pub kind: AppKind,
    /// PHI injection rate (events/s); ignored by [`AppKind::SevenZip`].
    pub rate_hz: f64,
    /// Instructions per PHI burst; ignored by [`AppKind::SevenZip`].
    pub burst_insts: u64,
}

impl AppSpec {
    /// Label used in cell keys and export rows.
    pub fn label(self) -> String {
        match self.kind {
            AppKind::RandomLevels => format!("phi{}", self.rate_hz),
            AppKind::FixedLevel(level) => format!("phiL{}@{}", level, self.rate_hz),
            AppKind::SevenZip => "7zip".to_string(),
        }
    }
}

/// The symbol stream a trial transmits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PayloadSpec {
    /// Uniform random symbols (seeded per trial).
    Random,
    /// A constant stream of one symbol (Figure 14(b) cells).
    Constant(u8),
}

impl PayloadSpec {
    /// Label used in cell keys and export rows.
    pub fn label(self) -> String {
        match self {
            PayloadSpec::Random => "random".to_string(),
            PayloadSpec::Constant(v) => format!("const{v}"),
        }
    }
}

/// Renders a mitigation set as a stable label (`"none"` when empty).
pub fn mitigations_label(mitigations: &[Mitigation]) -> String {
    if mitigations.is_empty() {
        return "none".to_string();
    }
    mitigations
        .iter()
        .map(|m| match m {
            Mitigation::PerCoreVr => "per-core-vr",
            Mitigation::ImprovedThrottling => "improved-throttling",
            Mitigation::SecureMode => "secure-mode",
        })
        .collect::<Vec<_>>()
        .join("+")
}

/// One fully-specified simulated run.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Platform the SoC simulates.
    pub platform: PlatformId,
    /// Which channel to drive.
    pub channel: ChannelSelect,
    /// OS noise.
    pub noise: NoiseSpec,
    /// Mitigations applied to the SoC (§7).
    pub mitigations: Vec<Mitigation>,
    /// Optional concurrent interfering application.
    pub app: Option<AppSpec>,
    /// Optional design-parameter override (the ablation axis).
    pub knob: Option<Knob>,
    /// Receiver selection (platform-calibrated by default).
    pub receiver: ReceiverSpec,
    /// Symbol stream shape.
    pub payload: PayloadSpec,
    /// Number of payload symbols per trial.
    pub payload_symbols: usize,
    /// Calibration repetitions per level.
    pub calib_reps: usize,
    /// Pinned frequency override (GHz); platform default when `None`.
    pub freq_ghz: Option<f64>,
    /// Trial index within the cell.
    pub trial: u32,
    /// The trial's master seed; every internal RNG stream derives from
    /// it, so a scenario's outcome is a pure function of its fields.
    pub seed: u64,
}

impl Scenario {
    /// True if this combination is actually runnable: SMT channels need
    /// an SMT platform, cross-core channels a second core, and baseline
    /// channels only exist in their fixed published setup (default
    /// platform/noise/mitigation/app/payload axes, single trial) — any
    /// other combination would export rows whose axis labels never
    /// applied to the measurement.
    pub fn supported(&self) -> bool {
        let kind = match self.channel {
            ChannelSelect::Icc(kind) => kind,
            // The multi-level channel decodes its own wider alphabet
            // and has no adaptive receiver: a non-default receiver
            // label would never apply to the measurement.
            ChannelSelect::MultiLevel(kind, _) => {
                if !self.receiver.is_default() {
                    return false;
                }
                kind
            }
            ChannelSelect::Baseline(_) => {
                return self.platform == PlatformId::CannonLake
                    && self.noise == NoiseSpec::Quiet
                    && self.mitigations.is_empty()
                    && self.app.is_none()
                    && self.knob.is_none()
                    && self.receiver.is_default()
                    && self.payload == PayloadSpec::Random
                    && self.trial == 0;
            }
            ChannelSelect::Probe(probe) => return self.probe_supported(probe),
        };
        let spec = self.platform.spec();
        match kind {
            ChannelKind::Thread => true,
            ChannelKind::Smt => spec.smt,
            ChannelKind::Cores => spec.n_cores >= 2,
        }
    }

    /// Probes measure the machine directly: there is no symbol stream,
    /// no interfering app, no mitigation stack and no design knob, so
    /// those axes must sit at their defaults — otherwise a row would
    /// carry an axis label that never applied to the measurement.
    fn probe_supported(&self, probe: ProbeKind) -> bool {
        if self.app.is_some()
            || self.knob.is_some()
            || self.payload != PayloadSpec::Random
            || !self.mitigations.is_empty()
            || !self.receiver.is_default()
        {
            return false;
        }
        let spec = self.platform.spec();
        match probe {
            ProbeKind::Tp { cores, .. } => cores >= 1 && (cores as usize) <= spec.n_cores,
            ProbeKind::PrecededTp { .. } => true,
            ProbeKind::GateIteration { iter } => iter < 3,
            // The IDQ model is platform-, noise-, and frequency-
            // independent (it counts cycles, not time); restrict to the
            // canonical setup so labels stay honest.
            ProbeKind::Idq(_) => {
                self.platform == PlatformId::CannonLake
                    && self.noise == NoiseSpec::Quiet
                    && self.freq_ghz.is_none()
            }
            ProbeKind::LevelDuration { level } => level < 4,
            // Operating points carry their own exact frequency, so the
            // grid's pinned-frequency axis must stay at its default.
            ProbeKind::OperatingPoint {
                freq_mhz, cores, ..
            } => {
                self.noise == NoiseSpec::Quiet
                    && self.freq_ghz.is_none()
                    && cores >= 1
                    && (cores as usize) <= spec.n_cores
                    && Freq::from_mhz(f64::from(freq_mhz)) <= spec.vf_curve.max_freq()
            }
        }
    }

    /// The cell key: every axis except the trial index. Trials of one
    /// cell aggregate into one summary row.
    pub fn cell_key(&self) -> String {
        let mut key = format!(
            "{}/{}/{}/{}/{}/{}x{}",
            self.platform.label(),
            self.channel.label(),
            self.noise.label(),
            mitigations_label(&self.mitigations),
            self.app.map_or_else(|| "noapp".to_string(), AppSpec::label),
            self.payload.label(),
            self.payload_symbols,
        );
        // Off-default axes append labeled segments, so cell keys (and
        // therefore the seeds derived from them) of campaigns that do
        // not sweep frequency or knobs are unchanged.
        if let Some(ghz) = self.freq_ghz {
            key.push_str(&format!("/f{ghz}"));
        }
        if let Some(knob) = self.knob {
            key.push('/');
            key.push_str(&knob.label());
        }
        if !self.receiver.is_default() {
            key.push('/');
            key.push_str(&self.receiver.label());
        }
        key
    }

    /// Full trial label: cell key plus trial index.
    pub fn label(&self) -> String {
        format!("{}#{}", self.cell_key(), self.trial)
    }

    /// Builds the channel configuration for IChannel-family scenarios:
    /// platform pinned at the scenario frequency, noise and mitigations
    /// applied, jitter and SoC seeds derived from the trial seed.
    pub fn channel_config(&self) -> ChannelConfig {
        let spec = self.platform.spec();
        let ghz = self.freq_ghz.unwrap_or(self.platform.default_freq_ghz());
        let freq = spec.pstates.highest_not_above(Freq::from_ghz(ghz));
        let mut cfg = ChannelConfig::default_cannon_lake();
        cfg.soc = SocConfig::pinned(spec, freq).with_noise(self.noise.config());
        for m in &self.mitigations {
            cfg = m.apply(cfg);
        }
        if let Some(knob) = self.knob {
            knob.apply(&mut cfg);
        }
        cfg.receiver = self.receiver.mode();
        cfg.jitter_seed = mix(self.seed, 1);
        cfg.soc.seed = mix(self.seed, 2);
        cfg
    }

    /// A free hardware thread for the interfering app: one not occupied
    /// by the channel's sender/receiver.
    fn app_placement(&self, kind: ChannelKind, spec: &PlatformSpec) -> (usize, usize) {
        let occupied: &[(usize, usize)] = match kind {
            ChannelKind::Thread => &[(0, 0)],
            ChannelKind::Smt => &[(0, 0), (0, 1)],
            ChannelKind::Cores => &[(0, 0), (1, 0)],
        };
        let mut candidates = vec![(spec.n_cores - 1, 0)];
        if spec.smt {
            candidates.push((0, 1));
            candidates.push((spec.n_cores - 1, 1));
        }
        candidates.push((1, 0));
        candidates
            .into_iter()
            .find(|slot| !occupied.contains(slot))
            .expect("a catalog platform always has a free hardware thread")
    }

    /// Runs the trial to completion and returns its record.
    ///
    /// # Panics
    ///
    /// Panics if the scenario is not [`Scenario::supported`].
    pub fn run(&self) -> TrialRecord {
        assert!(
            self.supported(),
            "unsupported scenario {} (grids filter these)",
            self.label()
        );
        let metrics = match self.channel {
            ChannelSelect::Icc(kind) => self.run_icc(kind),
            ChannelSelect::MultiLevel(kind, alpha) => self.run_multilevel(kind, alpha),
            ChannelSelect::Baseline(b) => self.run_baseline(b),
            ChannelSelect::Probe(p) => self.run_probe(p),
        };
        TrialRecord {
            scenario: self.clone(),
            metrics,
        }
    }

    fn payload_symbols_vec(&self) -> Vec<Symbol> {
        match self.payload {
            PayloadSpec::Random => random_symbols(self.payload_symbols, mix(self.seed, 3)),
            PayloadSpec::Constant(v) => vec![Symbol::new(v); self.payload_symbols],
        }
    }

    fn run_icc(&self, kind: ChannelKind) -> TrialMetrics {
        let cfg = self.channel_config();
        let channel = IChannel::new(kind, cfg);
        let cal = channel.calibrate(self.calib_reps);
        let symbols = self.payload_symbols_vec();
        let app = self.app;
        let placement = app.map(|_| self.app_placement(kind, &channel.config().soc.platform));
        // Repeat-and-vote receivers occupy `votes` slots per symbol, so
        // interfering apps must run for the full stretched transmission.
        let slots = symbols.len() * channel.slots_per_symbol();
        let deadline =
            channel.config().start_offset + channel.config().slot_period.scale((slots + 2) as f64);
        let app_seed = mix(self.seed, 4);
        let tx = channel.transmit_symbols_with(&symbols, &cal, |soc: &mut Soc| {
            if let (Some(app), Some((core, smt))) = (app, placement) {
                let program: Box<dyn ichannels_soc::program::Program> = match app.kind {
                    AppKind::RandomLevels => Box::new(RandomPhiApp::sender_levels(
                        app.rate_hz,
                        app.burst_insts,
                        deadline,
                        app_seed,
                    )),
                    AppKind::FixedLevel(level) => Box::new(RandomPhiApp::new(
                        app.rate_hz,
                        app.burst_insts,
                        vec![Symbol::new(level).sender_class()],
                        deadline,
                        app_seed,
                    )),
                    AppKind::SevenZip => Box::new(SevenZipApp::typical(deadline, app_seed)),
                };
                soc.spawn(core, smt, program);
            }
        });
        let mut confusion = ConfusionMatrix::new(4);
        for (s, r) in tx.sent.iter().zip(&tx.received) {
            confusion.record(s.value() as usize, r.value() as usize);
        }
        let symbol_rate = ichannels::ber::symbol_rate(&channel);
        let mi = confusion.mutual_information_bits_corrected();
        TrialMetrics {
            ber: confusion.bit_error_rate_2bit(),
            ser: confusion.symbol_error_rate(),
            throughput_bps: tx.throughput_bps(),
            capacity_bps: mi * symbol_rate,
            mi_bits_per_symbol: mi,
            min_separation_cycles: cal.min_separation_cycles(),
            n_symbols: symbols.len(),
            probe_value: f64::NAN,
            probe_aux: f64::NAN,
        }
    }

    fn run_multilevel(&self, kind: ChannelKind, alpha: AlphabetSpec) -> TrialMetrics {
        let cfg = self.channel_config();
        let channel = MultiLevelChannel::new(kind, cfg.clone(), alpha.alphabet());
        let means = channel.calibrate(self.calib_reps);
        let eval = channel.evaluate(&means, self.payload_symbols, mix(self.seed, 3));
        let mut sorted = means.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite means"));
        let min_sep = sorted
            .windows(2)
            .map(|w| w[1] - w[0])
            .fold(f64::INFINITY, f64::min);
        let symbol_rate = 1.0 / cfg.slot_period.as_secs();
        TrialMetrics {
            // Bit error rate is 2-bit-symbol specific; undefined here.
            ber: f64::NAN,
            ser: eval.ser,
            throughput_bps: eval.raw_bits_per_symbol * symbol_rate,
            capacity_bps: eval.capacity_bps,
            mi_bits_per_symbol: eval.mi_bits_per_symbol,
            min_separation_cycles: min_sep,
            n_symbols: self.payload_symbols,
            probe_value: f64::NAN,
            probe_aux: f64::NAN,
        }
    }

    fn run_baseline(&self, kind: BaselineKind) -> TrialMetrics {
        let (bps, ber, n) = match kind {
            BaselineKind::NetSpectre => {
                let ns = NetSpectreChannel::default_cannon_lake();
                let cal = ns.calibrate(3);
                let bits: Vec<bool> = (0..self.payload_symbols).map(|i| i % 3 != 0).collect();
                let tx = ns.transmit(&bits, cal);
                (tx.throughput_bps, tx.bit_error_rate(), bits.len())
            }
            BaselineKind::DfsCovert => {
                let dfs = DfsCovertChannel::default();
                let bits: Vec<bool> = (0..8).map(|i| i % 2 == 0).collect();
                let (dec, bps) = dfs.transmit(&bits);
                let ber = bits.iter().zip(&dec).filter(|(a, b)| a != b).count() as f64
                    / bits.len() as f64;
                (bps, ber, bits.len())
            }
            BaselineKind::TurboCc => {
                let turbo = TurboCcChannel::default();
                let cal = turbo.calibrate(2);
                let bits = [true, false, true, true, false];
                let tx = turbo.transmit(&bits, cal);
                (tx.throughput_bps, tx.bit_error_rate(), bits.len())
            }
            BaselineKind::Powert => {
                let pt = PowerTChannel::default();
                let bits: Vec<bool> = (0..8).map(|i| i % 2 == 0).collect();
                let (dec, bps) = pt.transmit(&bits);
                let ber = bits.iter().zip(&dec).filter(|(a, b)| a != b).count() as f64
                    / bits.len() as f64;
                (bps, ber, bits.len())
            }
        };
        TrialMetrics {
            ber,
            ser: ber,
            throughput_bps: bps,
            // Baselines report measured throughput/BER only.
            capacity_bps: f64::NAN,
            mi_bits_per_symbol: f64::NAN,
            min_separation_cycles: f64::NAN,
            n_symbols: n,
            probe_value: f64::NAN,
            probe_aux: f64::NAN,
        }
    }

    /// Wraps a probe measurement pair into the metrics struct (all
    /// channel metrics undefined).
    fn probe_metrics(&self, value: f64, aux: f64) -> TrialMetrics {
        TrialMetrics {
            ber: f64::NAN,
            ser: f64::NAN,
            throughput_bps: f64::NAN,
            capacity_bps: f64::NAN,
            mi_bits_per_symbol: f64::NAN,
            min_separation_cycles: f64::NAN,
            n_symbols: 0,
            probe_value: value,
            probe_aux: aux,
        }
    }

    /// The probe's pinned frequency: the scenario override (or platform
    /// default) snapped down to a real P-state.
    fn probe_freq(&self, spec: &PlatformSpec) -> Freq {
        let ghz = self.freq_ghz.unwrap_or(self.platform.default_freq_ghz());
        spec.pstates.highest_not_above(Freq::from_ghz(ghz))
    }

    /// A pinned, noise-configured SoC for loop probes, seeded from the
    /// trial seed.
    fn probe_soc(&self, spec: PlatformSpec, freq: Freq) -> Soc {
        let mut cfg = SocConfig::pinned(spec, freq).with_noise(self.noise.config());
        cfg.seed = mix(self.seed, 2);
        Soc::new(cfg)
    }

    fn run_probe(&self, probe: ProbeKind) -> TrialMetrics {
        match probe {
            ProbeKind::Tp { class, cores } => {
                let spec = self.platform.spec();
                let freq = self.probe_freq(&spec);
                let mut soc = self.probe_soc(spec, freq);
                // Loop long enough to outlast any TP (≥ 60 µs of work).
                let insts = instructions_for_duration(class, freq, SimTime::from_us(60.0));
                let rec = Recorder::new();
                soc.spawn(
                    0,
                    0,
                    Box::new(MeasuredLoop::once(class, insts, rec.clone())),
                );
                for core in 1..cores as usize {
                    soc.spawn(
                        core,
                        0,
                        Box::new(MeasuredLoop::once(class, insts, Recorder::new())),
                    );
                }
                soc.run_until_idle(SimTime::from_ms(5.0));
                let base_us = insts as f64 / nominal_ipc(class) / freq.as_hz() as f64 * 1e6;
                let tp = inflation_to_tp_us(rec.durations_us(soc.tsc())[0], base_us);
                self.probe_metrics(tp, f64::NAN)
            }
            ProbeKind::PrecededTp { prev } => {
                let spec = self.platform.spec();
                let freq = self.probe_freq(&spec);
                let mut soc = self.probe_soc(spec, freq);
                let main_insts =
                    instructions_for_duration(InstClass::Heavy512, freq, SimTime::from_us(60.0));
                let prev_insts =
                    instructions_for_duration(InstClass::Heavy256, freq, SimTime::from_us(15.0));
                let rec = Recorder::new();
                soc.spawn(
                    0,
                    0,
                    Box::new(PrecededLoop::new(
                        prev,
                        prev_insts,
                        InstClass::Heavy512,
                        main_insts,
                        SimTime::from_us(30.0),
                        rec.clone(),
                    )),
                );
                soc.run_until_idle(SimTime::from_ms(5.0));
                let base_us =
                    main_insts as f64 / nominal_ipc(InstClass::Heavy512) / freq.as_hz() as f64
                        * 1e6;
                let tp = inflation_to_tp_us(rec.durations_us(soc.tsc())[0], base_us);
                self.probe_metrics(tp, f64::NAN)
            }
            ProbeKind::GateIteration { iter } => {
                let spec = self.platform.spec();
                let freq = self.probe_freq(&spec);
                let mut soc = self.probe_soc(spec, freq);
                // Three back-to-back 300-instruction VMULPD-class loops
                // (§5.4): only the first pays the power-gate wake.
                let rec = Recorder::new();
                soc.spawn(
                    0,
                    0,
                    Box::new(MeasuredLoop::new(
                        InstClass::Heavy256,
                        300,
                        3,
                        SimTime::ZERO,
                        rec.clone(),
                    )),
                );
                soc.run_until_idle(SimTime::from_ms(1.0));
                self.probe_metrics(rec.durations_us(soc.tsc())[iter as usize], f64::NAN)
            }
            ProbeKind::Idq(condition) => {
                let mut idq = Idq::new();
                let (throttled, sibling, observe) = match condition {
                    IdqCondition::Throttled => (true, ThreadDemand::IDLE, SmtId::T0),
                    IdqCondition::Unthrottled => (false, ThreadDemand::IDLE, SmtId::T0),
                    IdqCondition::SmtSibling => {
                        (true, ThreadDemand::busy(InstClass::Scalar64), SmtId::T1)
                    }
                };
                idq.set_throttled(throttled, Some(SmtId::T0));
                let frac = idq.run_normalized_undelivered(
                    ThreadDemand::busy(InstClass::Heavy256),
                    sibling,
                    IDQ_PROBE_WINDOW_CYCLES,
                    observe,
                );
                self.probe_metrics(frac, f64::NAN)
            }
            ProbeKind::LevelDuration { level } => {
                // One transmitted symbol over the same-thread channel,
                // measured by the receiver under the scenario's noise.
                let cfg = self.channel_config();
                let channel = IChannel::new(ChannelKind::Thread, cfg);
                let durations = channel.run_symbols(&[Symbol::new(level)]);
                self.probe_metrics(durations[0] as f64, f64::NAN)
            }
            ProbeKind::OperatingPoint {
                class,
                freq_mhz,
                cores,
            } => {
                let spec = self.platform.spec();
                let freq = Freq::from_mhz(f64::from(freq_mhz));
                let base = spec.vf_curve.voltage_mv(freq);
                let classes: Vec<Option<InstClass>> = (0..spec.n_cores)
                    .map(|i| (i < cores as usize).then_some(class))
                    .collect();
                let vcc = base + spec.guardband().package_guardband_mv(&classes, base, freq);
                let acts: Vec<CoreActivity> = (0..spec.n_cores)
                    .map(|i| {
                        if i < cores as usize {
                            CoreActivity::busy(class)
                        } else {
                            CoreActivity::IDLE
                        }
                    })
                    .collect();
                let icc = spec.current_model().icc_a(&acts, vcc, freq, 60.0);
                self.probe_metrics(vcc, icc)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_scenario() -> Scenario {
        Scenario {
            platform: PlatformId::CannonLake,
            channel: ChannelSelect::Icc(ChannelKind::Thread),
            noise: NoiseSpec::Quiet,
            mitigations: vec![],
            app: None,
            knob: None,
            receiver: ReceiverSpec::Calibrated,
            payload: PayloadSpec::Random,
            payload_symbols: 8,
            calib_reps: 2,
            freq_ghz: None,
            trial: 0,
            seed: 7,
        }
    }

    #[test]
    fn quiet_thread_trial_is_error_free() {
        let record = base_scenario().run();
        assert_eq!(record.metrics.ber, 0.0);
        assert!(record.metrics.throughput_bps > 2_500.0);
        assert!(record.metrics.min_separation_cycles > 1_500.0);
    }

    #[test]
    fn trials_are_pure_functions_of_the_scenario() {
        let s = base_scenario();
        let a = s.run();
        let b = s.run();
        assert_eq!(a.metrics.ber, b.metrics.ber);
        assert_eq!(a.metrics.throughput_bps, b.metrics.throughput_bps);
        let mut other = s.clone();
        other.seed = 8;
        // A different seed draws a different payload; metrics may agree
        // but the rendered rows must reflect the seed.
        assert_ne!(other.run().scenario.seed, a.scenario.seed);
    }

    #[test]
    fn smt_unsupported_on_coffee_lake() {
        let mut s = base_scenario();
        s.platform = PlatformId::CoffeeLake;
        s.channel = ChannelSelect::Icc(ChannelKind::Smt);
        assert!(!s.supported());
        s.channel = ChannelSelect::Icc(ChannelKind::Cores);
        assert!(s.supported());
    }

    #[test]
    fn cell_key_excludes_trial() {
        let mut s = base_scenario();
        s.trial = 3;
        let t0 = {
            let mut x = s.clone();
            x.trial = 0;
            x
        };
        assert_eq!(s.cell_key(), t0.cell_key());
        assert_ne!(s.label(), t0.label());
    }

    #[test]
    fn default_axes_leave_cell_keys_unchanged() {
        // PR-1 campaigns never set freq or knob: their keys (and seeds)
        // must not grow new segments.
        let s = base_scenario();
        assert!(!s.cell_key().contains("/f"), "{}", s.cell_key());
        let mut pinned = s.clone();
        pinned.freq_ghz = Some(1.4);
        assert!(
            pinned.cell_key().ends_with("/f1.4"),
            "{}",
            pinned.cell_key()
        );
        let mut knobbed = s.clone();
        knobbed.knob = Some(Knob::VrSlew(4.8));
        assert!(
            knobbed.cell_key().ends_with("/slew4.8"),
            "{}",
            knobbed.cell_key()
        );
        // The default (calibrated) receiver adds no segment either; the
        // off-default receivers do.
        assert!(!s.cell_key().contains("/rx-"), "{}", s.cell_key());
        let mut legacy = s.clone();
        legacy.receiver = ReceiverSpec::Legacy;
        assert!(
            legacy.cell_key().ends_with("/rx-legacy"),
            "{}",
            legacy.cell_key()
        );
        let mut fixed = s.clone();
        fixed.receiver = ReceiverSpec::Fixed {
            window_scale: 2.0,
            votes: 5,
        };
        assert!(
            fixed.cell_key().ends_with("/rx-w2v5"),
            "{}",
            fixed.cell_key()
        );
    }

    #[test]
    fn off_default_receivers_only_apply_to_icc_channels() {
        let legacy = ReceiverSpec::Legacy;
        // IChannel scenarios accept any receiver.
        let mut s = base_scenario();
        s.receiver = legacy;
        assert!(s.supported());
        // Probes, baselines, and the multi-level channel decode outside
        // the adaptive receiver: a non-default label would be false.
        let mut probe = base_scenario();
        probe.channel = ChannelSelect::Probe(ProbeKind::Tp {
            class: InstClass::Heavy256,
            cores: 1,
        });
        assert!(probe.supported());
        probe.receiver = legacy;
        assert!(!probe.supported());
        let mut baseline = base_scenario();
        baseline.channel = ChannelSelect::Baseline(crate::scenario::BaselineKind::NetSpectre);
        assert!(baseline.supported());
        baseline.receiver = legacy;
        assert!(!baseline.supported());
        let mut multi = base_scenario();
        multi.channel = ChannelSelect::MultiLevel(ChannelKind::Thread, AlphabetSpec::Phi6);
        assert!(multi.supported());
        multi.receiver = legacy;
        assert!(!multi.supported());
    }

    #[test]
    fn receiver_spec_maps_onto_core_modes() {
        use ichannels::channel::ReceiverMode;
        assert_eq!(ReceiverSpec::Calibrated.mode(), ReceiverMode::Calibrated);
        assert_eq!(ReceiverSpec::Legacy.mode(), ReceiverMode::Legacy);
        let fixed = ReceiverSpec::Fixed {
            window_scale: 2.0,
            votes: 3,
        };
        assert_eq!(
            fixed.mode(),
            ReceiverMode::Fixed(ReceiverCalibration {
                window_scale: 2.0,
                votes: 3
            })
        );
        // The scenario's channel config carries the selection.
        let mut s = base_scenario();
        s.receiver = fixed;
        assert_eq!(s.channel_config().receiver, fixed.mode());
    }

    #[test]
    fn tp_probe_measures_a_throttling_period() {
        let mut s = base_scenario();
        s.channel = ChannelSelect::Probe(ProbeKind::Tp {
            class: InstClass::Heavy256,
            cores: 1,
        });
        let record = s.run();
        // Cannon Lake AVX2 TP at the default 1.4 GHz pin.
        assert!(
            (3.0..12.0).contains(&record.metrics.probe_value),
            "tp = {}",
            record.metrics.probe_value
        );
        assert!(record.metrics.ber.is_nan());
        // The TP grows with frequency (Figure 10(a) / Key Conclusion 4).
        let mut fast = s.clone();
        fast.freq_ghz = Some(3.0);
        assert!(fast.run().metrics.probe_value > record.metrics.probe_value);
    }

    #[test]
    fn idq_probe_matches_figure_11() {
        let run = |cond| {
            let mut s = base_scenario();
            s.channel = ChannelSelect::Probe(ProbeKind::Idq(cond));
            s.run().metrics.probe_value
        };
        assert!((run(IdqCondition::Throttled) - 0.75).abs() < 0.01);
        assert!(run(IdqCondition::Unthrottled) < 0.01);
        assert!((run(IdqCondition::SmtSibling) - 0.75).abs() < 0.01);
    }

    #[test]
    fn probes_reject_off_default_axes() {
        let mut s = base_scenario();
        s.channel = ChannelSelect::Probe(ProbeKind::Tp {
            class: InstClass::Heavy256,
            cores: 1,
        });
        assert!(s.supported());
        let mut mitigated = s.clone();
        mitigated.mitigations = vec![Mitigation::SecureMode];
        assert!(!mitigated.supported());
        let mut eight_cores = s.clone();
        eight_cores.channel = ChannelSelect::Probe(ProbeKind::Tp {
            class: InstClass::Heavy256,
            cores: 8,
        });
        assert!(!eight_cores.supported(), "cannon lake has 2 cores");
        eight_cores.platform = PlatformId::CoffeeLake;
        assert!(eight_cores.supported());
        // Probes that never read the pinned frequency reject the freq
        // axis (the rows would claim a sweep that never happened).
        let mut pinned_idq = s.clone();
        pinned_idq.channel = ChannelSelect::Probe(ProbeKind::Idq(IdqCondition::Throttled));
        assert!(pinned_idq.supported());
        pinned_idq.freq_ghz = Some(2.0);
        assert!(!pinned_idq.supported());
        let mut pinned_op = s.clone();
        pinned_op.channel = ChannelSelect::Probe(ProbeKind::OperatingPoint {
            class: InstClass::Heavy256,
            freq_mhz: 2200,
            cores: 1,
        });
        assert!(pinned_op.supported());
        pinned_op.freq_ghz = Some(2.0);
        assert!(!pinned_op.supported());
    }

    #[test]
    fn reset_time_knob_rescales_the_slot_period() {
        let mut s = base_scenario();
        s.knob = Some(Knob::ResetTimeUs(150.0));
        let cfg = s.channel_config();
        assert_eq!(cfg.slot_period, SimTime::from_us(190.0));
        assert_eq!(cfg.soc.platform.reset_time, SimTime::from_us(150.0));
    }

    #[test]
    fn mitigation_labels_are_stable() {
        assert_eq!(mitigations_label(&[]), "none");
        assert_eq!(
            mitigations_label(&[Mitigation::PerCoreVr, Mitigation::SecureMode]),
            "per-core-vr+secure-mode"
        );
    }

    #[test]
    fn secure_mode_scenario_kills_capacity() {
        let mut s = base_scenario();
        s.payload_symbols = 24;
        let baseline = s.run();
        s.mitigations = vec![Mitigation::SecureMode];
        let mitigated = s.run();
        assert!(
            mitigated.metrics.capacity_bps < 0.08 * baseline.metrics.capacity_bps,
            "residual capacity {} vs {}",
            mitigated.metrics.capacity_bps,
            baseline.metrics.capacity_bps
        );
    }
}

//! Trial records, per-cell aggregation, and CSV/JSONL rendering.
//!
//! Raw trials stream to JSONL (one object per line, byte-stable field
//! order); cells aggregate through [`ichannels_meter::stats`] into
//! summary rows (mean/σ BER, throughput distribution percentiles,
//! capacity) rendered as CSV.
//!
//! Rendering is row-based: a [`TrialRecord`] (live scenario + metrics)
//! lowers to a [`TrialRow`] (the exported field set), and a `TrialRow`
//! also parses back from a JSONL line. Writer and reader share the one
//! [`TrialRow::jsonl_row`] render path, which is what makes shard
//! merge/resume byte-identical to a fresh unsharded run.

use std::collections::BTreeMap;

use ichannels_meter::export::{CsvTable, JsonlRow};
use ichannels_meter::parse::{field, parse_jsonl_line, JsonValue};
use ichannels_meter::stats::{percentile, summarize, Summary};

use crate::scenario::{mitigations_label, AppSpec, Scenario};

/// Flat per-trial measurements. Metrics that do not apply to a channel
/// family (e.g. 2-bit BER on a 7-level alphabet, capacity on a
/// baseline) are `NaN` and render as JSON `null` / empty CSV cells.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrialMetrics {
    /// Bit error rate (2-bit symbols).
    pub ber: f64,
    /// Symbol error rate.
    pub ser: f64,
    /// Gross throughput (bits/s).
    pub throughput_bps: f64,
    /// Effective capacity (bits/s): bias-corrected MI × symbol rate.
    pub capacity_bps: f64,
    /// Bias-corrected mutual information per transaction (bits).
    pub mi_bits_per_symbol: f64,
    /// Minimum separation between adjacent calibrated levels (cycles).
    pub min_separation_cycles: f64,
    /// Number of payload symbols evaluated.
    pub n_symbols: usize,
    /// Primary probe measurement (TP µs, iteration duration µs,
    /// normalized undelivered fraction, duration cycles, Vcc mV —
    /// depending on the [`crate::scenario::ProbeKind`]); `NaN` for
    /// channel trials.
    pub probe_value: f64,
    /// Secondary probe measurement (Icc A for operating-point probes);
    /// `NaN` unless the probe defines one.
    pub probe_aux: f64,
}

impl TrialMetrics {
    /// The all-undefined metrics of a trial that never produced a
    /// measurement (every value `NaN`, zero symbols) — what a failed
    /// trial records next to its error.
    pub const fn undefined() -> Self {
        TrialMetrics {
            ber: f64::NAN,
            ser: f64::NAN,
            throughput_bps: f64::NAN,
            capacity_bps: f64::NAN,
            mi_bits_per_symbol: f64::NAN,
            min_separation_cycles: f64::NAN,
            n_symbols: 0,
            probe_value: f64::NAN,
            probe_aux: f64::NAN,
        }
    }
}

/// One completed trial: the scenario plus its measurements.
#[derive(Debug, Clone, PartialEq)]
pub struct TrialRecord {
    /// The scenario that produced this record.
    pub scenario: Scenario,
    /// The measurements.
    pub metrics: TrialMetrics,
    /// The readable failure of a trial whose channel run errored
    /// (`None` for a successful trial). A failed trial keeps its row —
    /// undefined metrics plus this message — so one bad cell never
    /// aborts a campaign or shard.
    pub error: Option<String>,
}

impl TrialRecord {
    /// Renders the record as one JSONL row (stable field order).
    pub fn jsonl_row(&self) -> JsonlRow {
        TrialRow::from_record(self).jsonl_row()
    }
}

/// The exported field set of one trial: what a JSONL/CSV row carries.
///
/// A `TrialRow` is a [`TrialRecord`] stripped to its serialized axis
/// labels — enough to rebuild the trial CSV and the per-cell summaries
/// from a reloaded stream, and to key resume/merge dedup, but not to
/// re-run the trial (a row has no `calib_reps`, for instance).
#[derive(Debug, Clone, PartialEq)]
pub struct TrialRow {
    /// Cell key (every axis except the trial index).
    pub cell: String,
    /// Platform label.
    pub platform: String,
    /// Channel label.
    pub channel: String,
    /// Noise label.
    pub noise: String,
    /// Mitigation-set label.
    pub mitigations: String,
    /// Concurrent-app label (`"noapp"` when undisturbed).
    pub app: String,
    /// Payload-shape label.
    pub payload: String,
    /// Trial index within the cell.
    pub trial: u64,
    /// The trial's master seed.
    pub seed: u64,
    /// The measurements.
    pub metrics: TrialMetrics,
    /// Failure message of an errored trial (`None` for a success). The
    /// field renders only when present, so successful rows are
    /// byte-identical to the pre-error-channel format.
    pub error: Option<String>,
}

impl TrialRow {
    /// Lowers a live record to its exported row.
    pub fn from_record(record: &TrialRecord) -> Self {
        let s = &record.scenario;
        TrialRow {
            cell: s.cell_key(),
            platform: s.platform.label().to_string(),
            channel: s.channel.label(),
            noise: s.noise.label(),
            mitigations: mitigations_label(&s.mitigations),
            app: s.app.map_or_else(|| "noapp".to_string(), AppSpec::label),
            payload: s.payload.label(),
            trial: u64::from(s.trial),
            seed: s.seed,
            metrics: record.metrics,
            error: record.error.clone(),
        }
    }

    /// The unique trial key (`cell#trial`) — matches
    /// [`Scenario::label`], so resume can match rows to scenarios.
    pub fn trial_key(&self) -> String {
        format!("{}#{}", self.cell, self.trial)
    }

    /// Renders the row as one JSONL object (stable field order) — the
    /// single render path shared by fresh runs and reloaded streams.
    /// The `error` field is appended only for errored trials, keeping
    /// every successful row byte-identical to the historical format.
    pub fn jsonl_row(&self) -> JsonlRow {
        let m = &self.metrics;
        let row = JsonlRow::new()
            .str("cell", &self.cell)
            .str("platform", &self.platform)
            .str("channel", &self.channel)
            .str("noise", &self.noise)
            .str("mitigations", &self.mitigations)
            .str("app", &self.app)
            .str("payload", &self.payload)
            .int("trial", self.trial)
            .int("seed", self.seed)
            .int("n_symbols", m.n_symbols as u64)
            .num("ber", m.ber)
            .num("ser", m.ser)
            .num("throughput_bps", m.throughput_bps)
            .num("capacity_bps", m.capacity_bps)
            .num("mi_bits_per_symbol", m.mi_bits_per_symbol)
            .num("min_separation_cycles", m.min_separation_cycles)
            .num("probe_value", m.probe_value)
            .num("probe_aux", m.probe_aux);
        match &self.error {
            Some(e) => row.str("error", e),
            None => row,
        }
    }

    /// Parses one JSONL trial line back into a row.
    ///
    /// # Errors
    ///
    /// Returns a description of the first missing or mistyped field
    /// (or the underlying JSON syntax error) — truncated lines from an
    /// interrupted campaign land here and are skipped by resume.
    pub fn parse(line: &str) -> Result<Self, String> {
        let fields = parse_jsonl_line(line).map_err(|e| e.to_string())?;
        let text = |key: &str| -> Result<String, String> {
            field(&fields, key)
                .and_then(JsonValue::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("missing string field `{key}`"))
        };
        let uint = |key: &str| -> Result<u64, String> {
            field(&fields, key)
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| format!("missing integer field `{key}`"))
        };
        let float = |key: &str| -> Result<f64, String> {
            field(&fields, key)
                .and_then(JsonValue::as_f64_or_nan)
                .ok_or_else(|| format!("missing numeric field `{key}`"))
        };
        Ok(TrialRow {
            cell: text("cell")?,
            platform: text("platform")?,
            channel: text("channel")?,
            noise: text("noise")?,
            mitigations: text("mitigations")?,
            app: text("app")?,
            payload: text("payload")?,
            trial: uint("trial")?,
            seed: uint("seed")?,
            // Optional: only errored trials carry the field.
            error: field(&fields, "error")
                .and_then(JsonValue::as_str)
                .map(str::to_string),
            metrics: TrialMetrics {
                n_symbols: uint("n_symbols")? as usize,
                ber: float("ber")?,
                ser: float("ser")?,
                throughput_bps: float("throughput_bps")?,
                capacity_bps: float("capacity_bps")?,
                mi_bits_per_symbol: float("mi_bits_per_symbol")?,
                min_separation_cycles: float("min_separation_cycles")?,
                probe_value: float("probe_value")?,
                probe_aux: float("probe_aux")?,
            },
        })
    }
}

fn csv_float(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6}")
    } else {
        String::new()
    }
}

/// The CSV header shared by [`records_to_csv`].
pub const TRIAL_CSV_HEADER: [&str; 18] = [
    "cell",
    "platform",
    "channel",
    "noise",
    "mitigations",
    "app",
    "payload",
    "trial",
    "seed",
    "n_symbols",
    "ber",
    "ser",
    "throughput_bps",
    "capacity_bps",
    "mi_bits_per_symbol",
    "min_separation_cycles",
    "probe_value",
    "probe_aux",
];

/// Renders trial rows as one CSV table.
pub fn rows_to_csv(rows: &[TrialRow]) -> CsvTable {
    let mut table = CsvTable::new(TRIAL_CSV_HEADER);
    for r in rows {
        let m = &r.metrics;
        table.push_row([
            r.cell.clone(),
            r.platform.clone(),
            r.channel.clone(),
            r.noise.clone(),
            r.mitigations.clone(),
            r.app.clone(),
            r.payload.clone(),
            r.trial.to_string(),
            r.seed.to_string(),
            m.n_symbols.to_string(),
            csv_float(m.ber),
            csv_float(m.ser),
            csv_float(m.throughput_bps),
            csv_float(m.capacity_bps),
            csv_float(m.mi_bits_per_symbol),
            csv_float(m.min_separation_cycles),
            csv_float(m.probe_value),
            csv_float(m.probe_aux),
        ]);
    }
    table
}

/// Renders raw trial records as one CSV table.
pub fn records_to_csv(records: &[TrialRecord]) -> CsvTable {
    let rows: Vec<TrialRow> = records.iter().map(TrialRow::from_record).collect();
    rows_to_csv(&rows)
}

/// Renders trial rows as one in-memory JSONL document.
pub fn rows_to_jsonl(rows: &[TrialRow]) -> String {
    let rendered: Vec<JsonlRow> = rows.iter().map(TrialRow::jsonl_row).collect();
    ichannels_meter::export::jsonl_to_string(rendered.iter())
}

/// Renders records as one in-memory JSONL document (used by the
/// determinism tests and `--stdout` tooling).
pub fn records_to_jsonl(records: &[TrialRecord]) -> String {
    let rows: Vec<JsonlRow> = records.iter().map(TrialRecord::jsonl_row).collect();
    ichannels_meter::export::jsonl_to_string(rows.iter())
}

/// Aggregated statistics of one grid cell (all trials of one axis
/// combination).
#[derive(Debug, Clone, PartialEq)]
pub struct CellSummary {
    /// The cell key (every axis except the trial index).
    pub cell: String,
    /// Number of trials aggregated.
    pub trials: usize,
    /// BER summary over trials with a defined BER.
    pub ber: Option<Summary>,
    /// Throughput summary (b/s).
    pub throughput: Option<Summary>,
    /// Throughput distribution percentiles `(p5, p50, p95)`.
    pub throughput_percentiles: Option<(f64, f64, f64)>,
    /// Capacity summary (b/s).
    pub capacity: Option<Summary>,
    /// Mean minimum level separation (cycles).
    pub mean_min_separation: Option<f64>,
    /// Probe-measurement summary over trials with a defined probe value.
    pub probe: Option<Summary>,
}

fn finite(rows: &[&TrialRow], f: impl Fn(&TrialMetrics) -> f64) -> Vec<f64> {
    rows.iter()
        .map(|r| f(&r.metrics))
        .filter(|v| v.is_finite())
        .collect()
}

/// Groups records by cell key and aggregates each group. Output is
/// sorted by cell key, so summaries are deterministic.
pub fn summarize_cells(records: &[TrialRecord]) -> Vec<CellSummary> {
    let rows: Vec<TrialRow> = records.iter().map(TrialRow::from_record).collect();
    summarize_rows(&rows)
}

/// Groups trial rows by cell key and aggregates each group — the same
/// math as [`summarize_cells`], applied to a reloaded (merged) stream.
pub fn summarize_rows(rows: &[TrialRow]) -> Vec<CellSummary> {
    let mut groups: BTreeMap<String, Vec<&TrialRow>> = BTreeMap::new();
    for r in rows {
        groups.entry(r.cell.clone()).or_default().push(r);
    }
    groups
        .into_iter()
        .map(|(cell, group)| {
            let bers = finite(&group, |m| m.ber);
            let tps = finite(&group, |m| m.throughput_bps);
            let caps = finite(&group, |m| m.capacity_bps);
            let seps = finite(&group, |m| m.min_separation_cycles);
            let probes = finite(&group, |m| m.probe_value);
            CellSummary {
                cell,
                trials: group.len(),
                ber: (!bers.is_empty()).then(|| summarize(&bers)),
                throughput: (!tps.is_empty()).then(|| summarize(&tps)),
                throughput_percentiles: (!tps.is_empty()).then(|| {
                    (
                        percentile(&tps, 5.0),
                        percentile(&tps, 50.0),
                        percentile(&tps, 95.0),
                    )
                }),
                capacity: (!caps.is_empty()).then(|| summarize(&caps)),
                mean_min_separation: (!seps.is_empty())
                    .then(|| seps.iter().sum::<f64>() / seps.len() as f64),
                probe: (!probes.is_empty()).then(|| summarize(&probes)),
            }
        })
        .collect()
}

/// Renders cell summaries as one CSV table.
pub fn summaries_to_csv(cells: &[CellSummary]) -> CsvTable {
    let mut table = CsvTable::new([
        "cell",
        "trials",
        "ber_mean",
        "ber_std",
        "throughput_mean_bps",
        "throughput_p5_bps",
        "throughput_p50_bps",
        "throughput_p95_bps",
        "capacity_mean_bps",
        "min_separation_cycles",
        "probe_mean",
        "probe_std",
    ]);
    for c in cells {
        let (p5, p50, p95) = c
            .throughput_percentiles
            .unwrap_or((f64::NAN, f64::NAN, f64::NAN));
        table.push_row([
            c.cell.clone(),
            c.trials.to_string(),
            c.ber.map_or_else(String::new, |s| csv_float(s.mean)),
            c.ber.map_or_else(String::new, |s| csv_float(s.std_dev)),
            c.throughput.map_or_else(String::new, |s| csv_float(s.mean)),
            csv_float(p5),
            csv_float(p50),
            csv_float(p95),
            c.capacity.map_or_else(String::new, |s| csv_float(s.mean)),
            c.mean_min_separation.map_or_else(String::new, csv_float),
            c.probe.map_or_else(String::new, |s| csv_float(s.mean)),
            c.probe.map_or_else(String::new, |s| csv_float(s.std_dev)),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::Grid;
    use crate::scenario::NoiseSpec;
    use ichannels::channel::ChannelKind;

    fn sample_records() -> Vec<TrialRecord> {
        let grid = Grid::new()
            .kinds(&[ChannelKind::Thread])
            .noises(vec![NoiseSpec::Quiet, NoiseSpec::Low])
            .trials(2)
            .payload_symbols(6);
        crate::exec::Executor::serial().run(&grid.scenarios())
    }

    #[test]
    fn jsonl_rows_carry_every_axis() {
        let records = sample_records();
        let json = records_to_jsonl(&records);
        assert_eq!(json.lines().count(), records.len());
        let first = json.lines().next().unwrap();
        for key in [
            "cell", "platform", "channel", "noise", "trial", "seed", "ber",
        ] {
            assert!(first.contains(&format!("\"{key}\":")), "{first}");
        }
    }

    #[test]
    fn csv_has_one_row_per_record() {
        let records = sample_records();
        let table = records_to_csv(&records);
        assert_eq!(table.len(), records.len());
    }

    #[test]
    fn cells_group_trials() {
        let records = sample_records();
        let cells = summarize_cells(&records);
        assert_eq!(cells.len(), 2, "quiet and low noise cells");
        for c in &cells {
            assert_eq!(c.trials, 2);
            assert!(c.ber.is_some());
            assert!(c.throughput.is_some());
            let (p5, p50, p95) = c.throughput_percentiles.unwrap();
            assert!(p5 <= p50 && p50 <= p95);
        }
        assert_eq!(summaries_to_csv(&cells).len(), 2);
    }

    #[test]
    fn rows_round_trip_byte_exactly() {
        let mut records = sample_records();
        // Exercise the NaN → null → NaN path too.
        records[0].metrics.capacity_bps = f64::NAN;
        let rows: Vec<TrialRow> = records.iter().map(TrialRow::from_record).collect();
        let rendered = rows_to_jsonl(&rows);
        assert_eq!(rendered, records_to_jsonl(&records));
        let reparsed: Vec<TrialRow> = rendered
            .lines()
            .map(|l| TrialRow::parse(l).expect("row parses"))
            .collect();
        // Byte-identical re-rendering (JSONL and CSV), identical cells.
        assert_eq!(rows_to_jsonl(&reparsed), rendered);
        assert_eq!(
            rows_to_csv(&reparsed).to_csv(),
            records_to_csv(&records).to_csv()
        );
        assert_eq!(
            summaries_to_csv(&summarize_rows(&reparsed)).to_csv(),
            summaries_to_csv(&summarize_cells(&records)).to_csv()
        );
        // Keys match the scenario labels resume looks up.
        for (row, record) in reparsed.iter().zip(&records) {
            assert_eq!(row.trial_key(), record.scenario.label());
            assert_eq!(row.seed, record.scenario.seed);
        }
    }

    #[test]
    fn truncated_rows_fail_to_parse() {
        let records = sample_records();
        let line = records_to_jsonl(&records[..1]);
        let line = line.trim_end();
        assert!(TrialRow::parse(line).is_ok());
        for cut in [1, line.len() / 2, line.len() - 1] {
            assert!(
                TrialRow::parse(&line[..cut]).is_err(),
                "accepted truncation at {cut}"
            );
        }
        // A structurally valid object missing trial fields also fails.
        assert!(TrialRow::parse("{\"cell\":\"x\"}").is_err());
    }

    #[test]
    fn errored_rows_carry_their_message_and_round_trip() {
        let records = sample_records();
        let mut errored = TrialRow::from_record(&records[0]);
        errored.error = Some("IccThreadCovert receiver missed transactions".to_string());
        errored.metrics = TrialMetrics::undefined();
        let line = errored.jsonl_row().to_json();
        assert!(line.contains("\"error\":\"IccThreadCovert"), "{line}");
        let reparsed = TrialRow::parse(&line).expect("errored row parses");
        assert_eq!(reparsed.error, errored.error);
        assert_eq!(reparsed.jsonl_row().to_json(), line);
        // Successful rows keep the historical byte format: no `error`
        // key at all.
        let clean = TrialRow::from_record(&records[0]);
        assert_eq!(clean.error, None);
        assert!(!clean.jsonl_row().to_json().contains("\"error\""));
        // Undefined metrics drop out of the cell aggregates.
        let cells = summarize_rows(&[errored]);
        assert_eq!(cells[0].trials, 1);
        assert!(cells[0].ber.is_none());
        assert!(cells[0].throughput.is_none());
    }

    #[test]
    fn nan_metrics_render_as_null_and_empty() {
        let mut records = sample_records();
        records[0].metrics.capacity_bps = f64::NAN;
        let json = records_to_jsonl(&records[..1]);
        assert!(json.contains("\"capacity_bps\":null"), "{json}");
        let table = records_to_csv(&records[..1]);
        // The NaN capacity column renders empty between its neighbors.
        assert!(table.to_csv().lines().nth(1).unwrap().contains(",,"));
        let cells = summarize_cells(&records[..1]);
        assert!(cells[0].capacity.is_none());
    }
}

//! Trial records, per-cell aggregation, and CSV/JSONL rendering.
//!
//! Raw trials stream to JSONL (one object per line, byte-stable field
//! order); cells aggregate through [`ichannels_meter::stats`] into
//! summary rows (mean/σ BER, throughput distribution percentiles,
//! capacity) rendered as CSV.

use std::collections::BTreeMap;

use ichannels_meter::export::{CsvTable, JsonlRow};
use ichannels_meter::stats::{percentile, summarize, Summary};

use crate::scenario::{mitigations_label, AppSpec, Scenario};

/// Flat per-trial measurements. Metrics that do not apply to a channel
/// family (e.g. 2-bit BER on a 7-level alphabet, capacity on a
/// baseline) are `NaN` and render as JSON `null` / empty CSV cells.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrialMetrics {
    /// Bit error rate (2-bit symbols).
    pub ber: f64,
    /// Symbol error rate.
    pub ser: f64,
    /// Gross throughput (bits/s).
    pub throughput_bps: f64,
    /// Effective capacity (bits/s): bias-corrected MI × symbol rate.
    pub capacity_bps: f64,
    /// Bias-corrected mutual information per transaction (bits).
    pub mi_bits_per_symbol: f64,
    /// Minimum separation between adjacent calibrated levels (cycles).
    pub min_separation_cycles: f64,
    /// Number of payload symbols evaluated.
    pub n_symbols: usize,
    /// Primary probe measurement (TP µs, iteration duration µs,
    /// normalized undelivered fraction, duration cycles, Vcc mV —
    /// depending on the [`crate::scenario::ProbeKind`]); `NaN` for
    /// channel trials.
    pub probe_value: f64,
    /// Secondary probe measurement (Icc A for operating-point probes);
    /// `NaN` unless the probe defines one.
    pub probe_aux: f64,
}

/// One completed trial: the scenario plus its measurements.
#[derive(Debug, Clone, PartialEq)]
pub struct TrialRecord {
    /// The scenario that produced this record.
    pub scenario: Scenario,
    /// The measurements.
    pub metrics: TrialMetrics,
}

impl TrialRecord {
    /// Renders the record as one JSONL row (stable field order).
    pub fn jsonl_row(&self) -> JsonlRow {
        let s = &self.scenario;
        let m = &self.metrics;
        JsonlRow::new()
            .str("cell", &s.cell_key())
            .str("platform", s.platform.label())
            .str("channel", &s.channel.label())
            .str("noise", &s.noise.label())
            .str("mitigations", &mitigations_label(&s.mitigations))
            .str(
                "app",
                &s.app.map_or_else(|| "noapp".to_string(), AppSpec::label),
            )
            .str("payload", &s.payload.label())
            .int("trial", u64::from(s.trial))
            .int("seed", s.seed)
            .int("n_symbols", m.n_symbols as u64)
            .num("ber", m.ber)
            .num("ser", m.ser)
            .num("throughput_bps", m.throughput_bps)
            .num("capacity_bps", m.capacity_bps)
            .num("mi_bits_per_symbol", m.mi_bits_per_symbol)
            .num("min_separation_cycles", m.min_separation_cycles)
            .num("probe_value", m.probe_value)
            .num("probe_aux", m.probe_aux)
    }
}

fn csv_float(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6}")
    } else {
        String::new()
    }
}

/// The CSV header shared by [`records_to_csv`].
pub const TRIAL_CSV_HEADER: [&str; 18] = [
    "cell",
    "platform",
    "channel",
    "noise",
    "mitigations",
    "app",
    "payload",
    "trial",
    "seed",
    "n_symbols",
    "ber",
    "ser",
    "throughput_bps",
    "capacity_bps",
    "mi_bits_per_symbol",
    "min_separation_cycles",
    "probe_value",
    "probe_aux",
];

/// Renders raw trial records as one CSV table.
pub fn records_to_csv(records: &[TrialRecord]) -> CsvTable {
    let mut table = CsvTable::new(TRIAL_CSV_HEADER);
    for r in records {
        let s = &r.scenario;
        let m = &r.metrics;
        table.push_row([
            s.cell_key(),
            s.platform.label().to_string(),
            s.channel.label(),
            s.noise.label(),
            mitigations_label(&s.mitigations),
            s.app.map_or_else(|| "noapp".to_string(), AppSpec::label),
            s.payload.label(),
            s.trial.to_string(),
            s.seed.to_string(),
            m.n_symbols.to_string(),
            csv_float(m.ber),
            csv_float(m.ser),
            csv_float(m.throughput_bps),
            csv_float(m.capacity_bps),
            csv_float(m.mi_bits_per_symbol),
            csv_float(m.min_separation_cycles),
            csv_float(m.probe_value),
            csv_float(m.probe_aux),
        ]);
    }
    table
}

/// Renders records as one in-memory JSONL document (used by the
/// determinism tests and `--stdout` tooling).
pub fn records_to_jsonl(records: &[TrialRecord]) -> String {
    let rows: Vec<JsonlRow> = records.iter().map(TrialRecord::jsonl_row).collect();
    ichannels_meter::export::jsonl_to_string(rows.iter())
}

/// Aggregated statistics of one grid cell (all trials of one axis
/// combination).
#[derive(Debug, Clone, PartialEq)]
pub struct CellSummary {
    /// The cell key (every axis except the trial index).
    pub cell: String,
    /// Number of trials aggregated.
    pub trials: usize,
    /// BER summary over trials with a defined BER.
    pub ber: Option<Summary>,
    /// Throughput summary (b/s).
    pub throughput: Option<Summary>,
    /// Throughput distribution percentiles `(p5, p50, p95)`.
    pub throughput_percentiles: Option<(f64, f64, f64)>,
    /// Capacity summary (b/s).
    pub capacity: Option<Summary>,
    /// Mean minimum level separation (cycles).
    pub mean_min_separation: Option<f64>,
    /// Probe-measurement summary over trials with a defined probe value.
    pub probe: Option<Summary>,
}

fn finite(records: &[&TrialRecord], f: impl Fn(&TrialMetrics) -> f64) -> Vec<f64> {
    records
        .iter()
        .map(|r| f(&r.metrics))
        .filter(|v| v.is_finite())
        .collect()
}

/// Groups records by cell key and aggregates each group. Output is
/// sorted by cell key, so summaries are deterministic.
pub fn summarize_cells(records: &[TrialRecord]) -> Vec<CellSummary> {
    let mut groups: BTreeMap<String, Vec<&TrialRecord>> = BTreeMap::new();
    for r in records {
        groups.entry(r.scenario.cell_key()).or_default().push(r);
    }
    groups
        .into_iter()
        .map(|(cell, group)| {
            let bers = finite(&group, |m| m.ber);
            let tps = finite(&group, |m| m.throughput_bps);
            let caps = finite(&group, |m| m.capacity_bps);
            let seps = finite(&group, |m| m.min_separation_cycles);
            let probes = finite(&group, |m| m.probe_value);
            CellSummary {
                cell,
                trials: group.len(),
                ber: (!bers.is_empty()).then(|| summarize(&bers)),
                throughput: (!tps.is_empty()).then(|| summarize(&tps)),
                throughput_percentiles: (!tps.is_empty()).then(|| {
                    (
                        percentile(&tps, 5.0),
                        percentile(&tps, 50.0),
                        percentile(&tps, 95.0),
                    )
                }),
                capacity: (!caps.is_empty()).then(|| summarize(&caps)),
                mean_min_separation: (!seps.is_empty())
                    .then(|| seps.iter().sum::<f64>() / seps.len() as f64),
                probe: (!probes.is_empty()).then(|| summarize(&probes)),
            }
        })
        .collect()
}

/// Renders cell summaries as one CSV table.
pub fn summaries_to_csv(cells: &[CellSummary]) -> CsvTable {
    let mut table = CsvTable::new([
        "cell",
        "trials",
        "ber_mean",
        "ber_std",
        "throughput_mean_bps",
        "throughput_p5_bps",
        "throughput_p50_bps",
        "throughput_p95_bps",
        "capacity_mean_bps",
        "min_separation_cycles",
        "probe_mean",
        "probe_std",
    ]);
    for c in cells {
        let (p5, p50, p95) = c
            .throughput_percentiles
            .unwrap_or((f64::NAN, f64::NAN, f64::NAN));
        table.push_row([
            c.cell.clone(),
            c.trials.to_string(),
            c.ber.map_or_else(String::new, |s| csv_float(s.mean)),
            c.ber.map_or_else(String::new, |s| csv_float(s.std_dev)),
            c.throughput.map_or_else(String::new, |s| csv_float(s.mean)),
            csv_float(p5),
            csv_float(p50),
            csv_float(p95),
            c.capacity.map_or_else(String::new, |s| csv_float(s.mean)),
            c.mean_min_separation.map_or_else(String::new, csv_float),
            c.probe.map_or_else(String::new, |s| csv_float(s.mean)),
            c.probe.map_or_else(String::new, |s| csv_float(s.std_dev)),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::Grid;
    use crate::scenario::NoiseSpec;
    use ichannels::channel::ChannelKind;

    fn sample_records() -> Vec<TrialRecord> {
        let grid = Grid::new()
            .kinds(&[ChannelKind::Thread])
            .noises(vec![NoiseSpec::Quiet, NoiseSpec::Low])
            .trials(2)
            .payload_symbols(6);
        crate::exec::Executor::serial().run(&grid.scenarios())
    }

    #[test]
    fn jsonl_rows_carry_every_axis() {
        let records = sample_records();
        let json = records_to_jsonl(&records);
        assert_eq!(json.lines().count(), records.len());
        let first = json.lines().next().unwrap();
        for key in [
            "cell", "platform", "channel", "noise", "trial", "seed", "ber",
        ] {
            assert!(first.contains(&format!("\"{key}\":")), "{first}");
        }
    }

    #[test]
    fn csv_has_one_row_per_record() {
        let records = sample_records();
        let table = records_to_csv(&records);
        assert_eq!(table.len(), records.len());
    }

    #[test]
    fn cells_group_trials() {
        let records = sample_records();
        let cells = summarize_cells(&records);
        assert_eq!(cells.len(), 2, "quiet and low noise cells");
        for c in &cells {
            assert_eq!(c.trials, 2);
            assert!(c.ber.is_some());
            assert!(c.throughput.is_some());
            let (p5, p50, p95) = c.throughput_percentiles.unwrap();
            assert!(p5 <= p50 && p50 <= p95);
        }
        assert_eq!(summaries_to_csv(&cells).len(), 2);
    }

    #[test]
    fn nan_metrics_render_as_null_and_empty() {
        let mut records = sample_records();
        records[0].metrics.capacity_bps = f64::NAN;
        let json = records_to_jsonl(&records[..1]);
        assert!(json.contains("\"capacity_bps\":null"), "{json}");
        let table = records_to_csv(&records[..1]);
        // The NaN capacity column renders empty between its neighbors.
        assert!(table.to_csv().lines().nth(1).unwrap().contains(",,"));
        let cells = summarize_cells(&records[..1]);
        assert!(cells[0].capacity.is_none());
    }
}

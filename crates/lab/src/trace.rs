//! Trace experiments: the characterization timelines (Figures 6, 7(b),
//! and 9) as declarative specs executed by the worker pool.
//!
//! A [`TraceSpec`] is to a time-series panel what a
//! [`crate::scenario::Scenario`] is to a trial: pure data — platform,
//! pinned frequency (or governor), sampling period, per-core workload —
//! that a worker can execute hermetically via [`TraceSpec::run`]
//! (typically through [`crate::Executor::map`]). The figure modules
//! then post-process the returned [`TraceRun`] into their CSV series
//! and printed summaries instead of driving the SoC themselves.

use ichannels_soc::config::SocConfig;
use ichannels_soc::program::{Program, Script};
use ichannels_soc::sim::Soc;
use ichannels_soc::trace::Trace;
use ichannels_uarch::isa::InstClass;
use ichannels_uarch::time::{Freq, SimTime};
use ichannels_workload::loops::instructions_for_duration;
use ichannels_workload::phases::{Phase, PhaseProgram};

use crate::scenario::PlatformId;

/// What a traced core executes.
#[derive(Debug, Clone)]
pub enum TraceProgram {
    /// An explicit phase schedule (Figure 6(a)'s staggered AVX2).
    Phases {
        /// The phase list, in execution order.
        phases: Vec<Phase>,
        /// Instructions per scheduling block.
        block_insts: u64,
    },
    /// The 454.calculix-like phase trace (Figure 6(b)).
    CalculixLike {
        /// Total trace duration.
        total: SimTime,
        /// Instructions per scheduling block.
        block_insts: u64,
    },
    /// One fixed loop sized to `duration` of unthrottled work at the
    /// SoC's initial frequency (the Figure 9 timelines).
    Burst {
        /// Instruction class of the loop.
        class: InstClass,
        /// Unthrottled target duration of the loop.
        duration: SimTime,
    },
    /// Non-AVX → AVX2 → AVX512 phases (Figure 7(b)).
    ThreePhase {
        /// Duration of each of the three phases.
        per_phase: SimTime,
        /// Instructions per scheduling block.
        block_insts: u64,
    },
}

/// One fully-specified trace experiment.
#[derive(Debug, Clone)]
pub struct TraceSpec {
    /// Display/export name of the experiment.
    pub name: String,
    /// Platform the SoC simulates.
    pub platform: PlatformId,
    /// Pinned frequency (snapped to a P-state); `None` runs the
    /// performance governor (the turbo experiments).
    pub freq_ghz: Option<f64>,
    /// Trace sampling period.
    pub sample_every: SimTime,
    /// Simulation horizon.
    pub horizon: SimTime,
    /// Per-core workloads: `(core index, program)`.
    pub cores: Vec<(usize, TraceProgram)>,
}

/// A completed trace experiment.
#[derive(Debug, Clone)]
pub struct TraceRun {
    /// The spec's name.
    pub name: String,
    /// Idle package voltage before any program ran (mV).
    pub v0_mv: f64,
    /// Initial core frequency.
    pub freq0: Freq,
    /// The recorded time series.
    pub trace: Trace,
}

impl TraceRun {
    /// The last sample at or before `t` mapped through `f`, or `None`
    /// when the trace has no sample that early.
    pub fn probe<R>(
        &self,
        t: SimTime,
        f: impl Fn(&ichannels_soc::trace::Sample) -> R,
    ) -> Option<R> {
        self.trace.samples().iter().rfind(|s| s.time <= t).map(f)
    }

    /// Vcc delta against the idle baseline at the last sample at or
    /// before `t` (0 when the trace has no sample that early).
    pub fn vcc_delta_at(&self, t: SimTime) -> f64 {
        self.probe(t, |s| s.vcc_mv - self.v0_mv).unwrap_or(0.0)
    }
}

impl TraceSpec {
    /// Runs the experiment to completion. Deterministic: trace
    /// experiments are noise-free, so the outcome is a pure function of
    /// the spec.
    pub fn run(&self) -> TraceRun {
        let spec = self.platform.spec();
        let cfg = match self.freq_ghz {
            Some(ghz) => {
                let freq = spec.pstates.highest_not_above(Freq::from_ghz(ghz));
                SocConfig::pinned(spec, freq)
            }
            None => SocConfig::quiet(spec),
        }
        .with_trace(self.sample_every);
        let mut soc = Soc::new(cfg);
        let v0_mv = soc.vcc_mv();
        let freq0 = soc.freq();
        for (core, program) in &self.cores {
            let boxed: Box<dyn Program> = match program {
                TraceProgram::Phases {
                    phases,
                    block_insts,
                } => Box::new(PhaseProgram::new(phases.clone(), *block_insts)),
                TraceProgram::CalculixLike { total, block_insts } => {
                    Box::new(PhaseProgram::calculix_like(*total, *block_insts))
                }
                TraceProgram::Burst { class, duration } => {
                    let insts = instructions_for_duration(*class, freq0, *duration);
                    Box::new(Script::run_loop(*class, insts))
                }
                TraceProgram::ThreePhase {
                    per_phase,
                    block_insts,
                } => Box::new(PhaseProgram::three_phase(*per_phase, *block_insts)),
            };
            soc.spawn(*core, 0, boxed);
        }
        soc.run_until(self.horizon);
        TraceRun {
            name: self.name.clone(),
            v0_mv,
            freq0,
            trace: soc.trace().clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Executor;

    #[test]
    fn burst_trace_records_samples_and_is_deterministic() {
        let spec = TraceSpec {
            name: "unit".to_string(),
            platform: PlatformId::CannonLake,
            freq_ghz: Some(1.4),
            sample_every: SimTime::from_ns(500.0),
            horizon: SimTime::from_us(40.0),
            cores: vec![(
                0,
                TraceProgram::Burst {
                    class: InstClass::Heavy256,
                    duration: SimTime::from_us(30.0),
                },
            )],
        };
        let a = spec.run();
        let b = Executor::new(2).map(std::slice::from_ref(&spec), TraceSpec::run);
        assert!(!a.trace.is_empty());
        assert_eq!(a.trace.samples().len(), b[0].trace.samples().len());
        assert_eq!(a.v0_mv, b[0].v0_mv);
        // The AVX2 burst raises Vcc above the idle baseline mid-run.
        let mid = a.vcc_delta_at(SimTime::from_us(15.0));
        assert!(mid > 1.0, "vcc delta {mid}");
    }

    #[test]
    fn governor_trace_uses_turbo_frequency() {
        let spec = TraceSpec {
            name: "turbo".to_string(),
            platform: PlatformId::CannonLake,
            freq_ghz: None,
            sample_every: SimTime::from_us(1.0),
            horizon: SimTime::from_us(20.0),
            cores: vec![],
        };
        let run = spec.run();
        assert!(run.freq0.as_ghz() > 2.2, "freq0 = {}", run.freq0);
    }
}

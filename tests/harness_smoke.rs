//! Smoke tests over the figure-regeneration harness: every artifact runs
//! in quick mode and its key claims hold. (The full-fidelity runs are the
//! `ichannels-bench` binaries.)

use ichannels_bench::figs;

#[test]
fn fig06_vcc_steps_and_flat_frequency() {
    let (_csv, steps) = figs::fig06::run_avx2_steps(true);
    let get = |name: &str| {
        steps
            .iter()
            .find(|(n, _)| n.contains(name))
            .map(|(_, v)| *v)
            .expect("phase present")
    };
    assert!(get("baseline").abs() < 0.5);
    let one = get("+1 step");
    let two = get("+2 steps");
    assert!(one > 3.0, "first step too small: {one}");
    assert!(two > one + 3.0, "second step missing: {one} → {two}");
    assert!(get("back to baseline").abs() < 0.5);
}

#[test]
fn fig07_limit_violations_match_paper() {
    let rows = figs::fig07::run_limits(true);
    let find = |sys: &str, wl: &str| {
        rows.iter()
            .find(|r| r.system.contains(sys) && r.workload == wl)
            .expect("row present")
    };
    // Desktop: Vccmax violation only for AVX2 at 4.9 GHz.
    assert_eq!(
        find("4.9GHz", "AVX2").violation.as_deref(),
        Some("Vccmax limit violation")
    );
    assert!(find("4.8GHz", "AVX2").violation.is_none());
    // Mobile: Iccmax violation only for AVX2 at 3.1 GHz.
    assert_eq!(
        find("3.1GHz", "AVX2").violation.as_deref(),
        Some("Iccmax limit violation")
    );
    assert!(find("2.2GHz", "AVX2").violation.is_none());
    // Non-AVX never violates.
    assert!(rows
        .iter()
        .filter(|r| r.workload == "Non-AVX")
        .all(|r| r.violation.is_none()));
}

#[test]
fn fig07_phases_step_down_and_stay_cool() {
    let rows = figs::fig07::run_phases(true);
    assert_eq!(rows.len(), 3);
    assert!(rows[0].freq_ghz > rows[1].freq_ghz);
    assert!(rows[1].freq_ghz > rows[2].freq_ghz);
    for r in &rows {
        assert!(r.temp_c < 100.0, "{}: Tj = {}", r.phase, r.temp_c);
    }
}

#[test]
fn fig08_tp_ordering_and_gate_wake() {
    let dists = figs::fig08::run_distributions(true);
    let tp = |name: &str| {
        dists
            .iter()
            .find(|d| d.platform.contains(name))
            .expect("platform present")
            .mean_us
    };
    // Haswell (FIVR) < MBVR parts; MBVR in the 12–16 µs band.
    assert!(tp("Haswell") < tp("Coffee"));
    assert!((7.0..11.0).contains(&tp("Haswell")), "{}", tp("Haswell"));
    assert!((11.0..17.0).contains(&tp("Coffee")), "{}", tp("Coffee"));

    let deltas = figs::fig08::run_power_gate(true);
    let first = |name: &str| {
        deltas
            .iter()
            .find(|d| d.platform.contains(name))
            .expect("platform present")
            .delta_ns[0]
    };
    // Coffee Lake: 8–15 ns first-iteration penalty; Haswell: none.
    assert!(
        (8.0..16.0).contains(&first("Coffee")),
        "{}",
        first("Coffee")
    );
    assert!(first("Haswell").abs() < 1.0, "{}", first("Haswell"));
}

#[test]
fn fig10_multilevel_and_preceded() {
    let sweep = figs::fig10::run_sweep(true);
    // TP grows with frequency for a fixed class/core count.
    let tp = |ghz: f64, cores: usize, rank: u8| {
        sweep
            .iter()
            .find(|(c, g, n, _)| c.intensity_rank() == rank && *g == ghz && *n == cores)
            .map(|(_, _, _, t)| *t)
            .expect("cell present")
    };
    assert!(tp(1.4, 1, 6) > tp(1.0, 1, 6));
    // TP grows with core count (exacerbation).
    assert!(tp(1.0, 2, 4) > tp(1.0, 1, 4) * 1.5);
    // Preceded experiment: monotone decreasing, ≥5 levels.
    let preceded = figs::fig10::run_preceded(true);
    for w in preceded.windows(2) {
        assert!(w[1].1 <= w[0].1 + 1e-6);
    }
}

#[test]
fn fig11_idq_fractions() {
    let (throttled, unthrottled, sibling) = figs::fig11::run(true);
    assert!((throttled - 0.75).abs() < 0.01);
    assert!(unthrottled < 0.01);
    assert!((sibling - 0.75).abs() < 0.01);
}

#[test]
fn fig13_levels_are_separable() {
    let (clusters, min_sep) = figs::fig13::run(true);
    assert_eq!(clusters.len(), 4);
    // >~2k cycles separation (quick mode tolerates slightly less).
    assert!(min_sep > 1500.0, "separation = {min_sep}");
}

#[test]
fn fig14_noise_shapes() {
    // (a) BER grows with event rate but stays moderate at low rates.
    let rows = figs::fig14::run_event_noise(true);
    let ber_at = |kind: &str, rate: f64| {
        rows.iter()
            .find(|(k, r, _)| k == kind && *r == rate)
            .map(|(_, _, b)| *b)
            .expect("row present")
    };
    assert!(ber_at("interrupts", 10.0) < 0.02);
    assert!(ber_at("interrupts", 10_000.0) > ber_at("interrupts", 100.0));
    // (c) BER grows with App-PHI rate.
    let rows = figs::fig14::run_app_rate(true);
    assert!(rows.last().unwrap().1 >= rows.first().unwrap().1);
    // 7-zip: BER < 0.07 (§6.3).
    let ber = figs::fig14::run_sevenzip(true);
    assert!(ber < 0.07, "7-zip BER = {ber}");
}

#[test]
fn fig14_error_matrix_is_lower_triangular() {
    let m = figs::fig14::run_error_matrix(true);
    // Diagonal and upper triangle (app level ≤ channel level in paper
    // terms: app symbol ≤ ich symbol) stay clean; at least one cell
    // where the app exceeds the channel level shows errors.
    let mut dirty = 0;
    for (a, row) in m.iter().enumerate() {
        for (i, ser) in row.iter().enumerate() {
            if a <= i {
                assert!(*ser < 0.15, "clean cell ({a},{i}) has SER {ser}");
            } else if *ser > 0.2 {
                dirty += 1;
            }
        }
    }
    assert!(dirty >= 2, "interference cells missing: {m:?}");
}

#[test]
fn fig12_ratios_match_paper_through_the_engine() {
    let rows = figs::fig12::run(true);
    let bps = |name: &str| {
        rows.iter()
            .find(|t| t.name == name)
            .expect("channel present")
            .bps
    };
    // §6.2 headlines: 2× NetSpectre, ~145×/47×/24× the baselines.
    let ns_ratio = bps("IccThreadCovert") / bps("NetSpectre");
    assert!(
        (1.8..2.2).contains(&ns_ratio),
        "NetSpectre ratio {ns_ratio}"
    );
    assert!(bps("IccSMTcovert") / bps("DFScovert") > 100.0);
    let powert_ratio = bps("IccSMTcovert") / bps("POWERT");
    assert!(
        (20.0..28.0).contains(&powert_ratio),
        "POWERT ratio {powert_ratio}"
    );
}

#[test]
fn table1_verdicts_match_paper_through_the_engine() {
    use ichannels_repro::ichannels::channel::ChannelKind;
    use ichannels_repro::ichannels::mitigations::{Effectiveness, Mitigation};
    let cells = figs::table1::run(true);
    assert_eq!(cells.len(), 9);
    let verdict = |m: Mitigation, k: ChannelKind| {
        cells
            .iter()
            .find(|c| c.mitigation == m && c.channel == k)
            .expect("cell present")
            .effectiveness
    };
    // Secure mode kills every channel.
    for kind in [ChannelKind::Thread, ChannelKind::Smt, ChannelKind::Cores] {
        assert_eq!(verdict(Mitigation::SecureMode, kind), Effectiveness::Full);
    }
    // Improved throttling kills exactly the SMT channel.
    assert_eq!(
        verdict(Mitigation::ImprovedThrottling, ChannelKind::Smt),
        Effectiveness::Full
    );
    assert_eq!(
        verdict(Mitigation::ImprovedThrottling, ChannelKind::Thread),
        Effectiveness::None
    );
    // Per-core VR kills the cross-core channel and weakens same-thread.
    assert_eq!(
        verdict(Mitigation::PerCoreVr, ChannelKind::Cores),
        Effectiveness::Full
    );
    assert_ne!(
        verdict(Mitigation::PerCoreVr, ChannelKind::Thread),
        Effectiveness::None
    );
}

#[test]
fn table2_summary_consistency() {
    let rows = figs::table2::run(true);
    let ich = rows.iter().find(|r| r.proposal == "IChannels").unwrap();
    let ns = rows.iter().find(|r| r.proposal == "NetSpectre").unwrap();
    let turbo = rows.iter().find(|r| r.proposal == "TurboCC").unwrap();
    assert!(ich.bw_bps > ns.bw_bps);
    assert!(ich.bw_bps > 40.0 * turbo.bw_bps);
    assert!(ich.cross_smt && ich.cross_core && ich.same_core);
}

//! The first fuzz finding, pinned: `campaign fuzz` (seed `0xF0552`)
//! flags case 1751 and shrinks it to
//! `cannon_lake/IccThreadCovert/quiet/none/noapp/randomx6/f3.5` — a
//! plain quiet thread channel whose only off-default axis is a pinned
//! 3.5 GHz operating point, decoding at BER ≈ 0.58 where the unpinned
//! twin decodes clean.
//!
//! The anomaly class: the calibrated receiver trains its thresholds at
//! the platform's *default* operating point, so pinning the core to a
//! different frequency shifts the PHI throttling signature out from
//! under the calibration — the same calibrated-at-the-wrong-point bug
//! class as the skylake-server cross-core outlier
//! (`tests/outlier_characterization.rs`), rediscovered mechanically by
//! the fuzzer instead of by a hand-run sweep. Like that test, this one
//! pins both sides of the A/B so the behavior stays visible until the
//! receiver learns to recalibrate at pinned operating points.

use ichannels_repro::ichannels::channel::ChannelKind;
use ichannels_repro::ichannels_lab::fuzz::oracle::{AnomalyKind, Oracle};
use ichannels_repro::ichannels_lab::fuzz::{self, gen};
use ichannels_repro::ichannels_lab::scenario::{
    ChannelSelect, NoiseSpec, PayloadSpec, PlatformId, ReceiverSpec, Scenario,
};
use ichannels_repro::ichannels_lab::{Executor, FuzzConfig, ShardSpec};

const FUZZ_SEED: u64 = 0xF0552;
const CASE: u64 = 1751;
const SHRUNK_CELL: &str = "cannon_lake/IccThreadCovert/quiet/none/noapp/randomx6/f3.5";
const SHRUNK_SEED: u64 = 2066847521854880337;
const SHRUNK_BER: f64 = 0.5833333333333334;

/// The minimal reproducer exactly as the finding row records it: the
/// cell key reconstructs the scenario, and the trial seed re-derives
/// from the fuzz base seed by the grid cell rule.
fn minimal_reproducer() -> Scenario {
    let mut s = Scenario {
        platform: PlatformId::CannonLake,
        channel: ChannelSelect::Icc(ChannelKind::Thread),
        noise: NoiseSpec::Quiet,
        mitigations: Vec::new(),
        app: None,
        knob: None,
        receiver: ReceiverSpec::Calibrated,
        payload: PayloadSpec::Random,
        payload_symbols: 6,
        calib_reps: 1,
        freq_ghz: Some(3.5),
        trial: 0,
        seed: 0,
    };
    s.seed = gen::cell_seed(FUZZ_SEED, &s);
    s
}

#[test]
fn the_pinned_reproducer_replays_the_frequency_pin_anomaly() {
    let s = minimal_reproducer();
    assert_eq!(s.cell_key(), SHRUNK_CELL);
    assert_eq!(
        s.seed, SHRUNK_SEED,
        "the cell-derived seed moved — findings rows would no longer replay"
    );

    // The anomaly side of the A/B: pinned to 3.5 GHz the calibrated
    // receiver confuses over half the symbols. Pinned exactly, so any
    // drift is a deliberate re-bless.
    let pinned = s.run().metrics.ber;
    assert_eq!(
        pinned, SHRUNK_BER,
        "the pinned-frequency BER moved; if the receiver learned to \
         recalibrate at pinned operating points, retire this pin into a \
         fixed-vs-legacy A/B like the skylake outlier's"
    );

    // The clean side: the same cell at the platform default operating
    // point decodes error-free.
    let mut twin = s.clone();
    twin.freq_ghz = None;
    twin.seed = gen::cell_seed(FUZZ_SEED, &twin);
    assert_eq!(
        twin.run().metrics.ber,
        0.0,
        "the default-frequency twin should decode clean"
    );

    // And the oracle classifies the pinned cell as an envelope break,
    // which is what surfaced it in the first place.
    let anomaly = Oracle::default()
        .judge(&s)
        .expect("the oracle must keep flagging the pinned reproducer");
    assert_eq!(anomaly.kind, AnomalyKind::ErrorRateDeviation);
    assert!(anomaly.measured > anomaly.allowed);
}

#[test]
fn the_fuzzer_rediscovers_and_shrinks_the_finding() {
    // A shard spec that owns exactly case 1751 re-runs the finding's
    // sample → judge → shrink pipeline without the other 2047 cases.
    let config = FuzzConfig {
        seed: FUZZ_SEED,
        cases: CASE + 1,
        shard: ShardSpec::new(CASE as usize, CASE as usize + 1).expect("valid shard"),
        ..FuzzConfig::default()
    };
    let report = fuzz::run(&config, &Executor::serial());
    assert_eq!(report.cases_run, 1);
    let [finding] = &report.findings[..] else {
        panic!(
            "case {CASE} must keep producing exactly one finding, got {:?}",
            report.findings
        );
    };
    assert_eq!(finding.case, CASE);
    assert!(finding.is_kind(AnomalyKind::ErrorRateDeviation));
    // The sampled cell carried noise and a wider payload; the shrinker
    // strips both and keeps the frequency pin — the axis the anomaly
    // actually lives on.
    assert_eq!(
        finding.cell,
        "cannon_lake/IccThreadCovert/low/none/noapp/randomx17/f3.5"
    );
    assert_eq!(finding.shrunk_cell, SHRUNK_CELL);
    assert_eq!(finding.shrunk_seed, SHRUNK_SEED);
    assert_eq!(finding.shrunk_measured, SHRUNK_BER);
    assert!(finding.shrink_steps > 0, "nothing shrank");
}

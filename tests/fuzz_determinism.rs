//! Replay determinism of the fuzz harness: a findings report is a pure
//! function of `(seed, cases, tolerance)`. These tests pin the three
//! equalities the `fuzz_findings.jsonl` contract promises — identical
//! bytes across repeated runs, across worker counts, and across shard
//! splits merged back together — on a seed known to produce at least
//! one finding, so the equalities cover real shrunk rows and not just
//! empty reports.

use ichannels_repro::ichannels_lab::fuzz::{self, findings};
use ichannels_repro::ichannels_lab::{Executor, FuzzConfig, ShardSpec};

/// Seed 7 flags (at least) one case within the first 64 — small enough
/// to keep this suite fast, real enough that the byte comparisons
/// exercise sampling, judging, and shrinking end to end.
fn config() -> FuzzConfig {
    FuzzConfig {
        seed: 7,
        cases: 96,
        ..FuzzConfig::default()
    }
}

#[test]
fn findings_bytes_are_identical_across_runs_and_worker_counts() {
    let serial = fuzz::run(&config(), &Executor::serial());
    assert!(
        !serial.findings.is_empty(),
        "seed 7 stopped producing findings in 96 cases — if the envelope moved \
         deliberately, re-pick a seeded finding for this suite"
    );
    let again = fuzz::run(&config(), &Executor::serial());
    let parallel = fuzz::run(&config(), &Executor::new(4));
    assert_eq!(
        serial.to_jsonl(),
        again.to_jsonl(),
        "two identical runs rendered different findings"
    );
    assert_eq!(
        serial.to_jsonl(),
        parallel.to_jsonl(),
        "worker count leaked into the findings bytes"
    );
    assert_eq!(serial.cases_run, parallel.cases_run);
}

#[test]
fn sharded_findings_merge_back_into_the_unsharded_bytes() {
    let full = fuzz::run(&config(), &Executor::new(2));
    let mut all = Vec::new();
    let mut cases_run = 0;
    for index in 0..3 {
        let sharded = FuzzConfig {
            shard: ShardSpec::new(index, 3).expect("valid shard"),
            ..config()
        };
        let report = fuzz::run(&sharded, &Executor::new(2));
        cases_run += report.cases_run;
        all.extend(report.findings);
    }
    assert_eq!(cases_run, full.cases_run, "shards must partition the cases");
    let merged = findings::merge_findings(all);
    assert_eq!(
        findings::findings_to_jsonl(&merged),
        full.to_jsonl(),
        "3-way shard split did not merge back into the unsharded report"
    );
}

#[test]
fn findings_rows_replay_their_sampled_scenario() {
    // Every row's `(seed, case)` regenerates the sampled scenario whose
    // cell and derived trial seed the row recorded — the property that
    // makes a findings file replayable without the run that wrote it.
    let report = fuzz::run(&config(), &Executor::new(2));
    for f in &report.findings {
        let replayed = fuzz::gen::sample_scenario(f.seed, f.case);
        assert_eq!(replayed.cell_key(), f.cell, "case {}", f.case);
        assert_eq!(replayed.seed, f.cell_seed, "case {}", f.case);
        let line = f.jsonl_row().to_json();
        let reparsed = findings::Finding::parse(&line).expect("row parses back");
        assert_eq!(&reparsed, f, "row does not round-trip");
    }
}

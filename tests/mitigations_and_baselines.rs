//! Integration tests for the Table 1 mitigation matrix and the
//! Figure 12 baseline comparisons.

use ichannels_repro::ichannels::baselines::dfscovert::DfsCovertChannel;
use ichannels_repro::ichannels::baselines::netspectre::NetSpectreChannel;
use ichannels_repro::ichannels::baselines::powert::PowerTChannel;
use ichannels_repro::ichannels::baselines::turbocc::TurboCcChannel;
use ichannels_repro::ichannels::channel::{ChannelConfig, ChannelKind, IChannel};
use ichannels_repro::ichannels::mitigations::{evaluate_mitigation, Effectiveness, Mitigation};

/// Table 1, row by row. Expected matrix (from the paper):
///   Per-core VR:         Thread partial, SMT partial, Cores full
///   Improved throttling: Thread no,      SMT full,    Cores no
///   Secure mode:         Thread full,    SMT full,    Cores full
#[test]
fn table1_matrix_matches_paper() {
    let base = ChannelConfig::default_cannon_lake();
    let expect = [
        (
            Mitigation::PerCoreVr,
            [
                (
                    ChannelKind::Thread,
                    &[Effectiveness::Partial, Effectiveness::Full][..],
                ),
                (
                    ChannelKind::Smt,
                    &[Effectiveness::Partial, Effectiveness::Full][..],
                ),
                (ChannelKind::Cores, &[Effectiveness::Full][..]),
            ],
        ),
        (
            Mitigation::ImprovedThrottling,
            [
                (ChannelKind::Thread, &[Effectiveness::None][..]),
                (ChannelKind::Smt, &[Effectiveness::Full][..]),
                (ChannelKind::Cores, &[Effectiveness::None][..]),
            ],
        ),
        (
            Mitigation::SecureMode,
            [
                (ChannelKind::Thread, &[Effectiveness::Full][..]),
                (ChannelKind::Smt, &[Effectiveness::Full][..]),
                (ChannelKind::Cores, &[Effectiveness::Full][..]),
            ],
        ),
    ];
    for (mitigation, rows) in expect {
        for (kind, allowed) in rows {
            let o = evaluate_mitigation(mitigation, kind, &base, 60, 2, 0xF00);
            assert!(
                allowed.contains(&o.effectiveness),
                "{} vs {}: got {:?} (residual {:.0}/{:.0} b/s)",
                mitigation,
                kind,
                o.effectiveness,
                o.mitigated.capacity_bps,
                o.baseline.capacity_bps,
            );
        }
    }
}

#[test]
fn netspectre_is_exactly_half_the_thread_channel() {
    let ns = NetSpectreChannel::default_cannon_lake();
    let cal = ns.calibrate(2);
    let tx = ns.transmit(&[true, false, true, true], cal);
    assert_eq!(tx.bit_error_rate(), 0.0);
    let icc = IChannel::icc_thread_covert();
    let icc_bps = 2.0 / icc.config().slot_period.as_secs();
    assert!((icc_bps / tx.throughput_bps - 2.0).abs() < 1e-9);
}

#[test]
fn baseline_throughput_ordering_matches_figure12() {
    // DFScovert < TurboCC < POWERT ≪ IChannels.
    let (_, dfs_bps) = DfsCovertChannel::default().transmit(&[true, false]);
    let turbo = TurboCcChannel::default();
    let t_cal = turbo.calibrate(1);
    let turbo_bps = turbo.transmit(&[true], t_cal).throughput_bps;
    let (_, powert_bps) = PowerTChannel::default().transmit(&[true, false]);
    let icc_bps = 2.0 / IChannel::icc_smt_covert().config().slot_period.as_secs();
    assert!(dfs_bps < turbo_bps, "{dfs_bps} !< {turbo_bps}");
    assert!(turbo_bps < powert_bps, "{turbo_bps} !< {powert_bps}");
    assert!(powert_bps * 10.0 < icc_bps, "{powert_bps} vs {icc_bps}");

    // Paper ratios: 145×, 47×, 24× (tolerate ±20%).
    for (bps, expected) in [(dfs_bps, 145.0), (turbo_bps, 47.0), (powert_bps, 24.0)] {
        let ratio = icc_bps / bps;
        assert!(
            (expected * 0.8..expected * 1.25).contains(&ratio),
            "ratio {ratio} vs expected {expected}"
        );
    }
}

#[test]
fn turbocc_requires_turbo_but_ichannels_does_not() {
    // Table 2 "Turbo-Independent" column: IChannels works at a pinned
    // low frequency; TurboCC's mechanism (license-driven frequency
    // changes) has nothing to modulate there.
    use ichannels_repro::ichannels_soc::config::{PlatformSpec, SocConfig};
    use ichannels_repro::ichannels_uarch::time::Freq;

    let mut cfg = ChannelConfig::default_cannon_lake();
    cfg.soc = SocConfig::pinned(PlatformSpec::cannon_lake(), Freq::from_ghz(1.4));
    let ch = IChannel::new(ChannelKind::Thread, cfg);
    let cal = ch.calibrate(2);
    let symbols: Vec<_> = (0..4u8)
        .map(ichannels_repro::ichannels::symbols::Symbol::new)
        .collect();
    let tx = ch.transmit_symbols(&symbols, &cal);
    assert_eq!(tx.received, symbols);
}

//! Integration tests of the `ichannels-lab` campaign engine: grid
//! cardinality, parallel-vs-serial determinism, and an end-to-end smoke
//! campaign across platforms, channels, and noise levels (the
//! acceptance sweep: ≥2 platforms × 3 channel kinds × ≥2 noise levels
//! on a 4-thread pool).

use ichannels_repro::ichannels::channel::ChannelKind;
use ichannels_repro::ichannels_lab::report::{records_to_jsonl, summaries_to_csv, summarize_cells};
use ichannels_repro::ichannels_lab::scenario::{
    ChannelSelect, Knob, NoiseSpec, PayloadSpec, PlatformId,
};
use ichannels_repro::ichannels_lab::{campaigns, AlphabetSpec, Executor, Grid};
use proptest::prelude::*;

fn acceptance_grid() -> Grid {
    Grid::new()
        .platforms(vec![PlatformId::CannonLake, PlatformId::CoffeeLake])
        .kinds(&[ChannelKind::Thread, ChannelKind::Smt, ChannelKind::Cores])
        .noises(vec![NoiseSpec::Quiet, NoiseSpec::Low])
        .payload_symbols(6)
        .calib_reps(2)
}

#[test]
fn grid_cardinality_counts_the_cross_product() {
    let grid = acceptance_grid();
    // 2 platforms × 3 kinds × 2 noises = 12 raw; Coffee Lake has no
    // SMT, so its 2 SMT cells are filtered.
    assert_eq!(grid.cardinality(), 12);
    assert_eq!(grid.scenarios().len(), 10);
    // Trials multiply the cardinality.
    assert_eq!(acceptance_grid().trials(5).cardinality(), 60);
}

#[test]
fn four_thread_pool_matches_serial_bit_for_bit() {
    let scenarios = acceptance_grid().scenarios();
    let serial = Executor::serial().run(&scenarios);
    let parallel = Executor::new(4).run(&scenarios);
    // Identical JSONL trial rows…
    assert_eq!(records_to_jsonl(&serial), records_to_jsonl(&parallel));
    // …and identical aggregate rows.
    let serial_cells = campaigns::run("det", &acceptance_grid(), Executor::serial()).cells;
    let parallel_cells = campaigns::run("det", &acceptance_grid(), Executor::new(4)).cells;
    assert_eq!(
        summaries_to_csv(&serial_cells).to_csv(),
        summaries_to_csv(&parallel_cells).to_csv()
    );
}

#[test]
fn acceptance_campaign_covers_all_three_channel_kinds() {
    let report = campaigns::run("acceptance", &acceptance_grid(), Executor::new(4));
    assert_eq!(report.records.len(), 10);
    for kind in ["IccThreadCovert", "IccSMTcovert", "IccCoresCovert"] {
        let cells: Vec<_> = report
            .records
            .iter()
            .filter(|r| r.scenario.channel.label() == kind)
            .collect();
        assert!(!cells.is_empty(), "{kind} missing from the sweep");
        for record in cells {
            assert!(
                record.metrics.throughput_bps > 2_500.0,
                "{}: {} b/s",
                record.scenario.label(),
                record.metrics.throughput_bps
            );
            assert!(
                record.metrics.min_separation_cycles > 500.0,
                "{}: separation {}",
                record.scenario.label(),
                record.metrics.min_separation_cycles
            );
        }
    }
    // Aggregation produced one summary row per cell.
    assert_eq!(report.cells.len(), 10);
}

#[test]
fn every_catalog_campaign_is_parallel_serial_identical() {
    // The engine invariant the figure migration leans on, for the whole
    // catalog (not just the PR-1 campaigns): any worker count produces
    // bit-identical trial rows, and aggregation preserves them all.
    for (name, grid) in campaigns::catalog(true) {
        let scenarios = grid.scenarios();
        assert!(!scenarios.is_empty(), "{name} is empty");
        let serial = Executor::serial().run(&scenarios);
        let parallel = Executor::new(4).run(&scenarios);
        assert_eq!(
            records_to_jsonl(&serial),
            records_to_jsonl(&parallel),
            "{name} diverged across worker counts"
        );
        assert_eq!(parallel.len(), scenarios.len(), "{name} dropped records");
        assert!(
            !summarize_cells(&parallel).is_empty(),
            "{name} has no cells"
        );
    }
}

#[test]
fn modulation_capacity_sweeps_alphabets_on_client_and_server() {
    let (_, grid) = campaigns::catalog(true)
        .into_iter()
        .find(|(name, _)| *name == "modulation_capacity")
        .expect("modulation_capacity registered in the catalog");
    let records = Executor::new(4).run(&grid.scenarios());
    // 2 platforms × {Thread, Cores} × {4, 6, 7}-level alphabets.
    assert_eq!(records.len(), 12);
    for platform in [PlatformId::CannonLake, PlatformId::SkylakeServer] {
        for kind in [ChannelKind::Thread, ChannelKind::Cores] {
            let tp_of = |alpha: AlphabetSpec| {
                records
                    .iter()
                    .find(|r| {
                        r.scenario.platform == platform
                            && r.scenario.channel == ChannelSelect::MultiLevel(kind, alpha)
                    })
                    .expect("cell present")
                    .metrics
                    .throughput_bps
            };
            // Raw throughput grows with the alphabet order (2 → 2.58 →
            // 2.81 bits/transaction at the same symbol rate).
            let (l4, l6, l7) = (
                tp_of(AlphabetSpec::Paper4),
                tp_of(AlphabetSpec::Phi6),
                tp_of(AlphabetSpec::Full7),
            );
            assert!(
                l4 < l6 && l6 < l7,
                "{}/{kind}: raw throughput not ordered: {l4} {l6} {l7}",
                platform.label()
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    #[test]
    fn grid_cardinality_is_the_product_of_axis_cardinalities(
        n_platforms in 1usize..5,
        n_noises in 1usize..4,
        n_knobs in 1usize..3,
        n_payloads in 1usize..5,
        n_freqs in 1usize..4,
        trials in 1u32..4,
    ) {
        let mut knobs: Vec<Option<Knob>> = vec![None];
        knobs.extend((1..n_knobs).map(|i| Some(Knob::VrSlew(2.4 * i as f64))));
        let grid = Grid::new()
            .platforms(PlatformId::ALL[..n_platforms.min(4)].to_vec())
            .noises((0..n_noises).map(|i| NoiseSpec::Interrupts(10.0 * (i + 1) as f64)).collect())
            .knobs(knobs)
            .payloads((0..n_payloads.min(4)).map(|i| PayloadSpec::Constant(i as u8)).collect())
            .freqs((0..n_freqs).map(|i| Some(1.0 + 0.2 * i as f64)).collect())
            .trials(trials);
        let expected = n_platforms.min(4)
            * n_noises
            * n_knobs
            * n_payloads.min(4)
            * n_freqs
            * trials as usize;
        prop_assert_eq!(grid.cardinality(), expected);
        // The default channel axis (same-thread IChannel) is supported
        // everywhere, so no cell is filtered.
        prop_assert_eq!(grid.scenarios().len(), expected);
        // Per-trial seeds are unique across the whole enumeration.
        let mut seeds: Vec<u64> = grid.scenarios().iter().map(|s| s.seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        prop_assert_eq!(seeds.len(), expected);
    }
}

#[test]
fn campaign_report_streams_jsonl_and_csv() {
    let dir = std::env::temp_dir().join("ichannels_campaign_engine_test");
    let _ = std::fs::remove_dir_all(&dir);
    let report = campaigns::run("itest", &acceptance_grid(), Executor::new(2));
    let paths = report.write_to(&dir).expect("report written");
    assert_eq!(paths.len(), 3);
    let jsonl = std::fs::read_to_string(&paths[0]).expect("jsonl readable");
    assert_eq!(jsonl.lines().count(), report.records.len());
    // Every line is one self-describing JSON object.
    for line in jsonl.lines() {
        assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        assert!(line.contains("\"cell\":"), "{line}");
    }
    let cells_csv = std::fs::read_to_string(&paths[2]).expect("cells csv readable");
    assert_eq!(cells_csv.lines().count(), report.cells.len() + 1);
    let _ = std::fs::remove_dir_all(&dir);
}

//! Integration tests of the `ichannels-lab` campaign engine: grid
//! cardinality, parallel-vs-serial determinism, and an end-to-end smoke
//! campaign across platforms, channels, and noise levels (the
//! acceptance sweep: ≥2 platforms × 3 channel kinds × ≥2 noise levels
//! on a 4-thread pool).

use ichannels_repro::ichannels::channel::ChannelKind;
use ichannels_repro::ichannels_lab::report::{records_to_jsonl, summaries_to_csv};
use ichannels_repro::ichannels_lab::scenario::{NoiseSpec, PlatformId};
use ichannels_repro::ichannels_lab::{campaigns, Executor, Grid};

fn acceptance_grid() -> Grid {
    Grid::new()
        .platforms(vec![PlatformId::CannonLake, PlatformId::CoffeeLake])
        .kinds(&[ChannelKind::Thread, ChannelKind::Smt, ChannelKind::Cores])
        .noises(vec![NoiseSpec::Quiet, NoiseSpec::Low])
        .payload_symbols(6)
        .calib_reps(2)
}

#[test]
fn grid_cardinality_counts_the_cross_product() {
    let grid = acceptance_grid();
    // 2 platforms × 3 kinds × 2 noises = 12 raw; Coffee Lake has no
    // SMT, so its 2 SMT cells are filtered.
    assert_eq!(grid.cardinality(), 12);
    assert_eq!(grid.scenarios().len(), 10);
    // Trials multiply the cardinality.
    assert_eq!(acceptance_grid().trials(5).cardinality(), 60);
}

#[test]
fn four_thread_pool_matches_serial_bit_for_bit() {
    let scenarios = acceptance_grid().scenarios();
    let serial = Executor::serial().run(&scenarios);
    let parallel = Executor::new(4).run(&scenarios);
    // Identical JSONL trial rows…
    assert_eq!(records_to_jsonl(&serial), records_to_jsonl(&parallel));
    // …and identical aggregate rows.
    let serial_cells = campaigns::run("det", &acceptance_grid(), Executor::serial()).cells;
    let parallel_cells = campaigns::run("det", &acceptance_grid(), Executor::new(4)).cells;
    assert_eq!(
        summaries_to_csv(&serial_cells).to_csv(),
        summaries_to_csv(&parallel_cells).to_csv()
    );
}

#[test]
fn acceptance_campaign_covers_all_three_channel_kinds() {
    let report = campaigns::run("acceptance", &acceptance_grid(), Executor::new(4));
    assert_eq!(report.records.len(), 10);
    for kind in ["IccThreadCovert", "IccSMTcovert", "IccCoresCovert"] {
        let cells: Vec<_> = report
            .records
            .iter()
            .filter(|r| r.scenario.channel.label() == kind)
            .collect();
        assert!(!cells.is_empty(), "{kind} missing from the sweep");
        for record in cells {
            assert!(
                record.metrics.throughput_bps > 2_500.0,
                "{}: {} b/s",
                record.scenario.label(),
                record.metrics.throughput_bps
            );
            assert!(
                record.metrics.min_separation_cycles > 500.0,
                "{}: separation {}",
                record.scenario.label(),
                record.metrics.min_separation_cycles
            );
        }
    }
    // Aggregation produced one summary row per cell.
    assert_eq!(report.cells.len(), 10);
}

#[test]
fn ready_made_campaigns_run_quick() {
    for (name, grid) in campaigns::catalog(true) {
        let report = campaigns::run(name, &grid, Executor::new(4));
        assert_eq!(
            report.records.len(),
            grid.scenarios().len(),
            "{name} dropped records"
        );
        assert!(!report.cells.is_empty(), "{name} has no cells");
    }
}

#[test]
fn campaign_report_streams_jsonl_and_csv() {
    let dir = std::env::temp_dir().join("ichannels_campaign_engine_test");
    let _ = std::fs::remove_dir_all(&dir);
    let report = campaigns::run("itest", &acceptance_grid(), Executor::new(2));
    let paths = report.write_to(&dir).expect("report written");
    assert_eq!(paths.len(), 3);
    let jsonl = std::fs::read_to_string(&paths[0]).expect("jsonl readable");
    assert_eq!(jsonl.lines().count(), report.records.len());
    // Every line is one self-describing JSON object.
    for line in jsonl.lines() {
        assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        assert!(line.contains("\"cell\":"), "{line}");
    }
    let cells_csv = std::fs::read_to_string(&paths[2]).expect("cells csv readable");
    assert_eq!(cells_csv.lines().count(), report.cells.len() + 1);
    let _ = std::fs::remove_dir_all(&dir);
}

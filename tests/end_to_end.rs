//! End-to-end covert transmissions across channels, platforms, noise
//! conditions, and coding schemes.

use ichannels_repro::ichannels::ber::{evaluate, random_symbols};
use ichannels_repro::ichannels::channel::{ChannelConfig, ChannelKind, IChannel};
use ichannels_repro::ichannels::ecc::{check_frame, frame_with_crc, Hamming74, Repetition3};
use ichannels_repro::ichannels::symbols::{bits_to_bytes, bytes_to_bits, symbols_to_bits};
use ichannels_repro::ichannels_soc::config::{PlatformSpec, SocConfig};
use ichannels_repro::ichannels_soc::noise::NoiseConfig;
use ichannels_repro::ichannels_uarch::time::Freq;

#[test]
fn all_three_channels_transfer_a_byte_error_free() {
    let payload = [0b1011_0010u8];
    let bits = bytes_to_bits(&payload);
    for ch in [
        IChannel::icc_thread_covert(),
        IChannel::icc_smt_covert(),
        IChannel::icc_cores_covert(),
    ] {
        let cal = ch.calibrate(2);
        let tx = ch.transmit_bits(&bits, &cal);
        assert_eq!(
            bits_to_bytes(&symbols_to_bits(&tx.received)),
            payload,
            "{} corrupted the payload",
            ch.kind()
        );
        assert!(tx.throughput_bps() > 2_500.0);
    }
}

#[test]
fn channel_capacity_is_about_24x_powert() {
    // §6.2 headline: ~2.9 kb/s ≈ 24× the 122 b/s of POWERT.
    let ch = IChannel::icc_smt_covert();
    let cal = ch.calibrate(2);
    let ev = evaluate(&ch, &cal, 30, 3);
    let ratio = ev.throughput_bps / 122.0;
    assert!((20.0..28.0).contains(&ratio), "ratio = {ratio}");
}

#[test]
fn cross_core_channel_works_on_all_platforms() {
    for platform in PlatformSpec::all() {
        let freq = platform.pstates.highest_not_above(Freq::from_ghz(2.0));
        let mut cfg = ChannelConfig::default_cannon_lake();
        cfg.soc = SocConfig::pinned(platform.clone(), freq);
        let ch = IChannel::new(ChannelKind::Cores, cfg);
        let cal = ch.calibrate(2);
        let symbols = random_symbols(8, 9);
        let tx = ch.transmit_symbols(&symbols, &cal);
        assert_eq!(
            tx.received, symbols,
            "cross-core channel failed on {}",
            platform.name
        );
    }
}

#[test]
fn low_noise_system_has_near_zero_ber() {
    let mut ch = IChannel::icc_thread_covert();
    ch.config_mut().soc = ch.config().soc.clone().with_noise(NoiseConfig::low());
    let cal = ch.calibrate(3);
    let ev = evaluate(&ch, &cal, 60, 5);
    assert!(ev.ber < 0.03, "BER = {}", ev.ber);
}

#[test]
fn heavy_noise_degrades_but_repetition_code_recovers() {
    let mut ch = IChannel::icc_smt_covert();
    ch.config_mut().soc = ch
        .config()
        .soc
        .clone()
        .with_noise(NoiseConfig::ctx_switches_only(1_500.0));
    let cal = ch.calibrate(3);

    let data = [true, false, true, true, false, false, true, false];
    let coded = Repetition3.encode(&data);
    // A repetition triple spans 1.5 symbols, so a single unlucky symbol
    // hit can defeat the code within one transmission; §6.3's remedy is
    // to retransmit. The sender repeats until a transmission decodes
    // clean (bounded), mirroring the one-way-link protocol. Each retry
    // happens later in time, i.e. under fresh noise arrivals, so the
    // SoC seed advances per attempt.
    let base_seed = ch.config().soc.seed;
    let mut recovered = None;
    let mut raw_bers = Vec::new();
    for attempt in 0..4u64 {
        ch.config_mut().soc.seed = base_seed.wrapping_add(attempt);
        let tx = ch.transmit_bits(&coded, &cal);
        raw_bers.push(tx.bit_error_rate());
        let decoded = Repetition3.decode(&symbols_to_bits(&tx.received));
        if decoded == data {
            recovered = Some(decoded);
            break;
        }
    }
    assert_eq!(
        recovered.as_deref(),
        Some(&data[..]),
        "raw BERs were {raw_bers:?}"
    );
}

#[test]
fn crc_framed_hamming_transfer_under_noise() {
    let mut ch = IChannel::icc_cores_covert();
    ch.config_mut().soc = ch.config().soc.clone().with_noise(NoiseConfig::low());
    let cal = ch.calibrate(2);
    let payload = b"key=42";
    let framed = frame_with_crc(payload);
    let mut bits = bytes_to_bits(&framed);
    while !bits.len().is_multiple_of(4) {
        bits.push(false);
    }
    let coded = Hamming74.encode(&bits);
    let mut channel_bits = coded.clone();
    if !channel_bits.len().is_multiple_of(2) {
        channel_bits.push(false);
    }
    let tx = ch.transmit_bits(&channel_bits, &cal);
    let mut rx = symbols_to_bits(&tx.received);
    rx.truncate(coded.len());
    let mut bytes = bits_to_bytes(&Hamming74.decode(&rx));
    bytes.truncate(framed.len());
    assert_eq!(check_frame(&bytes), Some(&payload[..]));
}

#[test]
fn transmissions_are_deterministic_given_seeds() {
    let run = || {
        let ch = IChannel::icc_thread_covert();
        let cal = ch.calibrate(2);
        ch.transmit_symbols(&random_symbols(12, 7), &cal).durations
    };
    assert_eq!(run(), run());
}

#[test]
fn channel_works_at_any_pinned_frequency() {
    // §5.7 / Table 2: the mechanism is turbo-independent — it works at
    // low frequencies too (unlike TurboCC).
    for ghz in [1.0, 1.8, 2.2] {
        let mut cfg = ChannelConfig::default_cannon_lake();
        cfg.soc = SocConfig::pinned(PlatformSpec::cannon_lake(), Freq::from_ghz(ghz));
        let ch = IChannel::new(ChannelKind::Thread, cfg);
        let cal = ch.calibrate(2);
        let symbols = random_symbols(8, 11);
        let tx = ch.transmit_symbols(&symbols, &cal);
        assert_eq!(tx.received, symbols, "failed at {ghz} GHz");
    }
}

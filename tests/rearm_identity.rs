//! `Soc::rearm()` is pinned bit-identical to fresh construction.
//!
//! The channel hot loop reuses one simulator across symbol runs by
//! re-arming it in place (`crates/core/src/channel/run.rs`), which is
//! only sound if a re-armed SoC is indistinguishable — to the last
//! trace byte and RNG draw — from dropping it and calling `Soc::new`
//! with the same config. This suite drives a *dirtied* simulator
//! (different workload, different stop time) through `rearm()` and
//! replays the same schedule on a fresh twin, across platform × seed ×
//! noise, comparing every observable surface: the sampled trace,
//! retired instruction counts, the final instant, and the electrical
//! state (frequency, rail voltage, package current, temperature).

use ichannels_repro::ichannels_soc::config::{PlatformSpec, SocConfig, TraceConfig};
use ichannels_repro::ichannels_soc::noise::NoiseConfig;
use ichannels_repro::ichannels_soc::program::{Action, Script};
use ichannels_repro::ichannels_soc::sim::Soc;
use ichannels_repro::ichannels_soc::trace::Sample;
use ichannels_repro::ichannels_uarch::isa::InstClass;
use ichannels_repro::ichannels_uarch::time::{Freq, SimTime};
use proptest::prelude::*;

fn platform(idx: usize) -> PlatformSpec {
    match idx {
        0 => PlatformSpec::cannon_lake(),
        1 => PlatformSpec::coffee_lake(),
        2 => PlatformSpec::haswell(),
        _ => PlatformSpec::skylake_server(),
    }
}

/// Noise points from quiet to interrupt+context-switch heavy, so the
/// redraw-in-construction-order contract is exercised with live
/// arrival streams, not just empty ones.
fn noise(idx: usize) -> NoiseConfig {
    let mut n = NoiseConfig::quiet();
    match idx {
        0 => {}
        1 => n.interrupt_rate_hz = 20_000.0,
        2 => n.ctx_switch_rate_hz = 3_000.0,
        _ => {
            n.interrupt_rate_hz = 50_000.0;
            n.ctx_switch_rate_hz = 5_000.0;
        }
    }
    n
}

/// Everything a run exposes; compared with exact (bitwise) `f64`
/// equality — "close" is not the contract, identical is.
#[derive(Debug, PartialEq)]
struct Observed {
    end: SimTime,
    samples: Vec<Sample>,
    retired_00: f64,
    retired_10: f64,
    freq: Freq,
    vcc_mv: f64,
    icc_a: f64,
    temp_c: f64,
}

/// The reference schedule: a license-raising PHI burst with a sleep in
/// the middle on core 0, and a scalar spin on core 1.
fn drive(soc: &mut Soc) -> Observed {
    soc.spawn(
        0,
        0,
        Box::new(Script::new(
            vec![
                Action::Run {
                    class: InstClass::Heavy256,
                    instructions: 40_000,
                },
                Action::SleepFor(SimTime::from_us(40.0)),
                Action::Run {
                    class: InstClass::Heavy512,
                    instructions: 20_000,
                },
                Action::Halt,
            ],
            "tx",
        )),
    );
    soc.spawn(
        1,
        0,
        Box::new(Script::run_loop(InstClass::Scalar64, 80_000)),
    );
    let end = soc.run_until_idle(SimTime::from_ms(3.0));
    Observed {
        end,
        samples: soc.trace().samples().to_vec(),
        retired_00: soc.inst_retired(0, 0),
        retired_10: soc.inst_retired(1, 0),
        freq: soc.freq(),
        vcc_mv: soc.vcc_mv(),
        icc_a: soc.icc_a(),
        temp_c: soc.temp_c(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// A dirtied-then-rearmed SoC replays the reference schedule with
    /// byte-identical observables to a freshly constructed twin.
    #[test]
    fn rearm_is_bit_identical_to_fresh_construction(
        platform_idx in 0usize..4,
        noise_idx in 0usize..4,
        seed in any::<u64>(),
        dirty_insts in 1_000u64..60_000,
    ) {
        let spec = platform(platform_idx);
        let freq = spec.pstates.highest_not_above(Freq::from_ghz(2.0));
        let mut cfg = SocConfig::pinned(spec, freq);
        cfg.noise = noise(noise_idx);
        cfg.seed = seed;
        cfg.trace = TraceConfig {
            sample_period: Some(SimTime::from_us(10.0)),
        };

        let mut fresh = Soc::new(cfg.clone());
        let want = drive(&mut fresh);

        // Dirty a second simulator with a different workload and stop
        // time, then re-arm it in place and replay.
        let mut reused = Soc::new(cfg);
        reused.spawn(
            0,
            0,
            Box::new(Script::run_loop(InstClass::Light256, dirty_insts)),
        );
        reused.run_until_idle(SimTime::from_us(900.0));
        reused.rearm();
        let got = drive(&mut reused);

        prop_assert_eq!(want, got);
    }
}

//! The calibration memo's two load-bearing guarantees:
//!
//! 1. **Purity** — `Calibration::for_config` is a pure function of the
//!    config fingerprint: memo hits, memo misses, and the disabled
//!    cache all produce identical means, for arbitrary kind × platform
//!    × seed × reps combinations (proptest).
//! 2. **Byte transparency** — running the whole quick catalog with the
//!    memo on produces JSONL byte-identical to running it with the
//!    memo off (the same shape as `tests/receiver_invariance.rs`), so
//!    the cache can never leak into recorded artifacts.
//!
//! The memo is process-global state, so every test here serializes on
//! one lock and restores the enabled default before releasing it.

use std::sync::{Mutex, MutexGuard};

use ichannels_repro::ichannels::channel::{
    calibration, Calibration, ChannelConfig, ChannelKind, IChannel,
};
use ichannels_repro::ichannels_lab::report::records_to_jsonl;
use ichannels_repro::ichannels_lab::{campaigns, Executor};
use ichannels_repro::ichannels_soc::config::{PlatformSpec, SocConfig};
use ichannels_repro::ichannels_uarch::time::Freq;
use proptest::prelude::*;

static MEMO_LOCK: Mutex<()> = Mutex::new(());

/// Serializes memo-global tests and restores the default (enabled)
/// state however the test exits.
struct MemoGuard(#[allow(dead_code)] MutexGuard<'static, ()>);

impl MemoGuard {
    fn acquire() -> Self {
        let guard = MEMO_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        MemoGuard(guard)
    }
}

impl Drop for MemoGuard {
    fn drop(&mut self) {
        calibration::set_memo_enabled(true);
    }
}

fn platform(idx: usize) -> PlatformSpec {
    match idx {
        0 => PlatformSpec::cannon_lake(),
        1 => PlatformSpec::coffee_lake(),
        2 => PlatformSpec::haswell(),
        _ => PlatformSpec::skylake_server(),
    }
}

fn kind(idx: usize) -> ChannelKind {
    [ChannelKind::Thread, ChannelKind::Smt, ChannelKind::Cores][idx]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// `for_config` is a pure function of the fingerprint: the first
    /// (miss) and second (hit) memoized calls, the disabled-cache
    /// recomputation, and the `IChannel::calibrate` surface all agree;
    /// equal configs fingerprint equally and a reseeded config does
    /// not.
    #[test]
    fn for_config_is_pure_in_the_fingerprint(
        platform_idx in 0usize..4,
        kind_idx in 0usize..3,
        seed in any::<u64>(),
        reps in 1usize..3,
    ) {
        let spec = platform(platform_idx);
        let k = kind(kind_idx);
        prop_assume!(k != ChannelKind::Smt || spec.smt);
        let mut cfg = ChannelConfig::default_cannon_lake();
        let freq = spec.pstates.highest_not_above(Freq::from_ghz(2.0));
        cfg.soc = SocConfig::pinned(spec, freq);
        cfg.jitter_seed = seed;
        cfg.soc.seed = seed.rotate_left(17);

        let _guard = MemoGuard::acquire();
        calibration::set_memo_enabled(true);
        calibration::reset_memo();
        let miss = Calibration::for_config(k, &cfg, reps);
        let hit = Calibration::for_config(k, &cfg, reps);
        prop_assert_eq!(&miss, &hit);
        let stats = calibration::memo_stats();
        prop_assert_eq!(stats.misses, 1);
        prop_assert_eq!(stats.hits, 1);

        calibration::set_memo_enabled(false);
        let uncached = Calibration::for_config(k, &cfg, reps);
        prop_assert_eq!(&miss, &uncached);
        let channel = IChannel::new(k, cfg.clone());
        prop_assert_eq!(&channel.calibrate(reps), &miss);
        calibration::set_memo_enabled(true);

        // Fingerprints: stable for equal configs, sensitive to seeds.
        let fp = calibration::fingerprint(k, &cfg, reps);
        prop_assert_eq!(&fp, &calibration::fingerprint(k, &cfg.clone(), reps));
        let mut reseeded = cfg.clone();
        reseeded.jitter_seed = seed.wrapping_add(1);
        prop_assert!(fp != calibration::fingerprint(k, &reseeded, reps));
    }
}

/// The whole quick catalog renders byte-identical JSONL with the memo
/// on and off — the cache is invisible in every recorded artifact.
#[test]
fn catalog_jsonl_is_byte_identical_with_memo_on_and_off() {
    let _guard = MemoGuard::acquire();
    for (name, grid) in campaigns::catalog(true) {
        let scenarios = grid.scenarios();
        calibration::set_memo_enabled(false);
        let off = Executor::new(4).run(&scenarios);
        calibration::set_memo_enabled(true);
        calibration::reset_memo();
        let on = Executor::new(4).run(&scenarios);
        assert_eq!(
            records_to_jsonl(&off),
            records_to_jsonl(&on),
            "{name}: the calibration memo leaked into trial bytes"
        );
    }
}

/// Re-running identical trials trains nothing: the second pass serves
/// every calibration from the memo (what `campaign bench` records as
/// the cache-on arm).
#[test]
fn repeated_runs_stop_training() {
    let _guard = MemoGuard::acquire();
    let (_, grid) = campaigns::catalog(true)
        .into_iter()
        .find(|(name, _)| *name == "client_vs_server")
        .expect("catalog campaign");
    let scenarios = grid.scenarios();
    calibration::set_memo_enabled(true);
    calibration::reset_memo();
    Executor::new(4).run(&scenarios);
    let warm = calibration::memo_stats();
    assert!(warm.misses > 0, "first pass must train");
    Executor::new(4).run(&scenarios);
    let second = calibration::memo_stats();
    assert_eq!(
        second.misses, warm.misses,
        "second pass must not re-train any cell"
    );
    assert!(second.hits > warm.hits, "second pass must hit the memo");
}

//! The telemetry layer's load-bearing guarantee: **byte transparency**.
//! Enabling spans and metrics must not move a single output byte —
//! the whole quick catalog renders identical JSONL with telemetry on
//! and off — and shard snapshots must merge associatively back into
//! the unsharded snapshot (the telemetry analogue of `merge_streams`),
//! pinned by a proptest over arbitrary shard splits.
//!
//! The obs switch is process-global state, so every test here
//! serializes on one lock and restores the disabled default however
//! it exits.

use std::sync::{Mutex, MutexGuard};

use ichannels_repro::ichannels_lab::report::records_to_jsonl;
use ichannels_repro::ichannels_lab::{campaigns, Executor};
use ichannels_repro::ichannels_obs as obs;
use proptest::prelude::*;

static OBS_LOCK: Mutex<()> = Mutex::new(());

/// Serializes obs-global tests and restores the default (disabled)
/// switch however the test exits.
struct ObsGuard(#[allow(dead_code)] MutexGuard<'static, ()>);

impl ObsGuard {
    fn acquire() -> Self {
        let guard = OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        ObsGuard(guard)
    }
}

impl Drop for ObsGuard {
    fn drop(&mut self) {
        obs::set_enabled(false);
    }
}

/// The whole quick catalog renders byte-identical JSONL with telemetry
/// on and off — every span, counter, and histogram lives strictly
/// out-of-band, so the golden suite and the determinism proofs cannot
/// see the difference.
#[test]
fn catalog_jsonl_is_byte_identical_with_telemetry_on_and_off() {
    let _guard = ObsGuard::acquire();
    for (name, grid) in campaigns::catalog(true) {
        let scenarios = grid.scenarios();
        obs::set_enabled(false);
        let off = Executor::new(4).run(&scenarios);
        obs::set_enabled(true);
        obs::reset();
        let on = Executor::new(4).run(&scenarios);
        obs::set_enabled(false);
        assert_eq!(
            records_to_jsonl(&off),
            records_to_jsonl(&on),
            "{name}: telemetry leaked into trial bytes"
        );
    }
}

/// An instrumented run actually records: phase spans for every trial,
/// the trial counter, and the calibration memo invariant
/// `requests == hits + misses` (the CI merge job's sanity check).
#[test]
fn instrumented_catalog_records_the_advertised_metrics() {
    let _guard = ObsGuard::acquire();
    let (_, grid) = campaigns::catalog(true)
        .into_iter()
        .find(|(name, _)| *name == "client_vs_server")
        .expect("catalog campaign");
    let scenarios = grid.scenarios();
    obs::set_enabled(true);
    obs::reset();
    let records = Executor::new(2).run(&scenarios);
    obs::set_enabled(false);
    let snap = obs::global().snapshot();

    let n = scenarios.len() as u64;
    assert_eq!(snap.counter("trial.runs"), n);
    assert_eq!(records.len(), scenarios.len());
    for phase in [
        "trial.total",
        "trial.resolve",
        "trial.config",
        "trial.calibration",
        "trial.transmit",
        "trial.metrics",
    ] {
        assert_eq!(snap.histogram(phase).count, n, "{phase} missed trials");
    }
    // The five sub-phases nest inside trial.total.
    let phases_ns: u64 = [
        "trial.resolve",
        "trial.config",
        "trial.calibration",
        "trial.transmit",
        "trial.metrics",
    ]
    .iter()
    .map(|p| snap.histogram(p).sum)
    .sum();
    let total_ns = snap.histogram("trial.total").sum;
    assert!(
        phases_ns <= total_ns,
        "phase sums {phases_ns}ns exceed trial totals {total_ns}ns"
    );
    // SoC stepping was observed and dominates nothing it shouldn't:
    // every icc trial re-arms at least once (calibration + payload).
    assert!(snap.counter("soc.rearms") >= n);
    assert!(snap.histogram("soc.step_ns").count >= n);
    // The memo invariant the `campaign telemetry` sanity check
    // enforces across merged shards.
    let requests = snap.counter("calibration.requests");
    assert!(requests > 0, "icc trials must request calibrations");
    assert_eq!(
        requests,
        snap.counter("calibration.memo_hits") + snap.counter("calibration.memo_misses")
    );
    // Executor accounting: one busy sample per worker, every item
    // counted.
    assert_eq!(snap.counter("exec.items"), n);
    assert!(snap.gauges.contains_key("exec.threads"));
}

/// Splits `snap`-shaped recordings across shards: each shard registry
/// records a disjoint slice of the same event stream.
fn record_events(registry: &obs::MetricsRegistry, events: &[(u8, u64)]) {
    for &(kind, v) in events {
        match kind % 3 {
            0 => registry.add_counter("c", v),
            1 => registry.gauge_max("g", v),
            _ => registry.observe("h", v),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Shard snapshots merge associatively and commutatively: any
    /// split of one event stream into N shard registries, merged in
    /// any grouping (left fold, right fold, pairwise), reproduces the
    /// unsharded snapshot byte for byte — the same contract
    /// `merge_streams` gives trial rows.
    #[test]
    fn snapshot_merge_is_associative_over_shard_splits(
        events in proptest::collection::vec((any::<u8>(), 0u64..1_000_000), 1..64),
        n_shards in 1usize..6,
    ) {
        // Unsharded reference: every event in one registry.
        let full = obs::MetricsRegistry::new();
        record_events(&full, &events);
        let reference = full.snapshot();

        // Round-robin the events across shard registries.
        let shards: Vec<obs::MetricsSnapshot> = (0..n_shards)
            .map(|i| {
                let r = obs::MetricsRegistry::new();
                let slice: Vec<(u8, u64)> = events
                    .iter()
                    .copied()
                    .enumerate()
                    .filter(|(j, _)| j % n_shards == i)
                    .map(|(_, e)| e)
                    .collect();
                record_events(&r, &slice);
                r.snapshot()
            })
            .collect();

        // Left fold.
        let mut left = obs::MetricsSnapshot::new();
        for s in &shards {
            left.merge(s);
        }
        prop_assert_eq!(&left, &reference);
        prop_assert_eq!(left.to_json(), reference.to_json());

        // Reverse order (commutativity).
        let mut rev = obs::MetricsSnapshot::new();
        for s in shards.iter().rev() {
            rev.merge(s);
        }
        prop_assert_eq!(&rev, &reference);

        // Pairwise tree (associativity): merge adjacent pairs until
        // one snapshot remains.
        let mut layer = shards.clone();
        while layer.len() > 1 {
            layer = layer
                .chunks(2)
                .map(|pair| {
                    let mut m = pair[0].clone();
                    if let Some(b) = pair.get(1) {
                        m.merge(b);
                    }
                    m
                })
                .collect();
        }
        prop_assert_eq!(&layer[0], &reference);

        // And the merged snapshot round-trips through its JSON.
        let parsed = obs::MetricsSnapshot::parse(&reference.to_json()).expect("parses");
        prop_assert_eq!(parsed, reference);
    }
}

//! Characterization of the ROADMAP-flagged BER ≈ 0.19 outlier on
//! `skylake_server/IccCoresCovert/quiet`.
//!
//! The one-shot `client_vs_server` sweep found the cross-core channel
//! markedly noisier on the server part while every client cell decodes
//! error-free. Suspected cause: the Skylake-SP load-line impedance is
//! much lower than the client parts' (0.9 mΩ vs 1.6–1.9 mΩ — a beefier
//! server VR), so a remote core's PHI produces a smaller IR-drop signal
//! on the shared rail; the cross-core level separation is compressed
//! toward the receiver's measurement-jitter floor and adjacent levels
//! start to confuse. These tests pin the outlier down as *documented
//! current behavior* so a future fix (or model correction) shows up as
//! a deliberate golden/test change, not silent drift.

use ichannels_repro::ichannels::channel::ChannelKind;
use ichannels_repro::ichannels_lab::scenario::{ChannelSelect, NoiseSpec, PlatformId};
use ichannels_repro::ichannels_lab::{campaigns, Executor};
use ichannels_repro::ichannels_soc::config::PlatformSpec;

#[test]
fn server_cross_core_quiet_cell_is_the_known_outlier() {
    let grid = campaigns::client_vs_server(true);
    let records = Executor::new(4).run(&grid.scenarios());
    let cell = |platform: PlatformId, kind: ChannelKind, noise: NoiseSpec| {
        records
            .iter()
            .find(|r| {
                r.scenario.platform == platform
                    && r.scenario.channel == ChannelSelect::Icc(kind)
                    && r.scenario.noise == noise
            })
            .expect("campaign covers the cell")
    };

    // The outlier: the server cross-core cell decodes with BER ≈ 0.19
    // (documented behavior, not an accuracy claim).
    let outlier = cell(
        PlatformId::SkylakeServer,
        ChannelKind::Cores,
        NoiseSpec::Quiet,
    );
    assert!(
        (0.05..0.35).contains(&outlier.metrics.ber),
        "outlier BER moved: {} — if this was a deliberate model fix, \
         re-characterize and update this test + the ROADMAP",
        outlier.metrics.ber
    );

    // Every client cross-core cell in the same sweep decodes error-free.
    for platform in [PlatformId::CannonLake, PlatformId::CoffeeLake] {
        let client = cell(platform, ChannelKind::Cores, NoiseSpec::Quiet);
        assert_eq!(
            client.metrics.ber,
            0.0,
            "{} cross-core should be clean",
            platform.label()
        );
    }

    // Mechanism: the server's cross-core level separation is compressed
    // versus the client part — consistent with the lower load-line
    // impedance shrinking the remote-PHI IR-drop signature. The
    // compression is modest (~10–15 %), but it pushes the tightest
    // adjacent-level gap into the receiver's jitter floor, which is
    // where the ≈0.19 BER comes from.
    let client_sep = cell(PlatformId::CannonLake, ChannelKind::Cores, NoiseSpec::Quiet)
        .metrics
        .min_separation_cycles;
    let server_sep = outlier.metrics.min_separation_cycles;
    assert!(
        server_sep < 0.95 * client_sep,
        "expected compressed server separation: server {server_sep} vs client {client_sep}"
    );
}

#[test]
fn server_load_line_is_the_odd_one_out() {
    // The physical parameter the characterization points at: Skylake-SP
    // runs a much stiffer rail than every client platform.
    let server = PlatformSpec::skylake_server();
    for client in PlatformSpec::all() {
        assert!(
            server.rll_mohm < 0.6 * client.rll_mohm,
            "{}: rll {} vs server {}",
            client.name,
            client.rll_mohm,
            server.rll_mohm
        );
    }
}

//! Regression test for the (fixed) ROADMAP outlier on
//! `skylake_server/IccCoresCovert/quiet`.
//!
//! History: the one-shot `client_vs_server` sweep decoded the server
//! cross-core cell at BER ≈ 0.19 while every client cell was clean.
//! Root cause: the Skylake-SP load-line impedance is much lower than
//! the client parts' (0.9 mΩ vs 1.6–1.9 mΩ — a beefier server VR), so
//! a remote core's PHI produces a smaller IR-drop signal on the shared
//! rail; the cross-core level separation is compressed toward the
//! receiver's measurement-jitter floor and adjacent levels confuse.
//!
//! The fix is the platform-calibrated adaptive receiver
//! ([`ichannels::channel::ReceiverCalibration`]): on a rail whose
//! separation compression falls below the floor the receiver
//! repeat-and-votes each symbol (and stretches its integration
//! window), exactly as the paper's attacker would integrate longer on
//! a harder target. These tests pin the fixed behavior **and** the
//! legacy reproduction of the original outlier, so both sides of the
//! A/B stay visible.

use ichannels_repro::ichannels::channel::ChannelKind;
use ichannels_repro::ichannels_lab::scenario::{
    ChannelSelect, NoiseSpec, PlatformId, ReceiverSpec,
};
use ichannels_repro::ichannels_lab::{campaigns, Executor};
use ichannels_repro::ichannels_pdn::loadline::LoadLine;
use ichannels_repro::ichannels_soc::config::PlatformSpec;

#[test]
fn server_cross_core_outlier_is_fixed_by_the_calibrated_receiver() {
    let grid = campaigns::client_vs_server(true);
    let scenarios = grid.scenarios();
    let records = Executor::new(4).run(&scenarios);
    let cell = |platform: PlatformId, kind: ChannelKind, noise: NoiseSpec| {
        records
            .iter()
            .find(|r| {
                r.scenario.platform == platform
                    && r.scenario.channel == ChannelSelect::Icc(kind)
                    && r.scenario.noise == noise
            })
            .expect("campaign covers the cell")
    };

    // The fix: under the default (platform-calibrated) receiver the
    // formerly-outlying server cross-core cell decodes error-free —
    // pinned exactly, so any drift is a deliberate re-bless.
    let fixed = cell(
        PlatformId::SkylakeServer,
        ChannelKind::Cores,
        NoiseSpec::Quiet,
    );
    assert!(
        fixed.metrics.ber < 0.05,
        "server cross-core BER regressed: {}",
        fixed.metrics.ber
    );
    assert_eq!(
        fixed.metrics.ber, 0.0,
        "the calibrated receiver decodes this cell clean; if this moved \
         deliberately, re-bless the goldens and update this pin"
    );

    // The A/B: re-running the *same scenario and seed* with the legacy
    // fixed-window receiver reproduces the original BER ≈ 0.19 outlier
    // the ROADMAP documented before this fix.
    let mut legacy = fixed.scenario.clone();
    legacy.receiver = ReceiverSpec::Legacy;
    let legacy_ber = legacy.run().metrics.ber;
    assert_eq!(
        legacy_ber, 0.1875,
        "the legacy receiver must still document the original outlier \
         (recorded at BER 0.1875 on this seed)"
    );

    // Every client cross-core cell in the same sweep decodes error-free.
    for platform in [PlatformId::CannonLake, PlatformId::CoffeeLake] {
        let client = cell(platform, ChannelKind::Cores, NoiseSpec::Quiet);
        assert_eq!(
            client.metrics.ber,
            0.0,
            "{} cross-core should be clean",
            platform.label()
        );
    }

    // Mechanism (unchanged by the fix): the server's cross-core level
    // separation stays compressed versus the client part — the
    // calibrated receiver compensates at the demodulator, it does not
    // change the physics.
    let client_sep = cell(PlatformId::CannonLake, ChannelKind::Cores, NoiseSpec::Quiet)
        .metrics
        .min_separation_cycles;
    let server_sep = fixed.metrics.min_separation_cycles;
    assert!(
        server_sep < 0.95 * client_sep,
        "expected compressed server separation: server {server_sep} vs client {client_sep}"
    );
}

#[test]
fn server_load_line_is_the_odd_one_out() {
    // The physical parameter the receiver calibrates against:
    // Skylake-SP runs a much stiffer rail than every client platform,
    // and the load-line model quantifies the compression.
    let server = PlatformSpec::skylake_server();
    let reference = LoadLine::client_reference();
    for client in PlatformSpec::all() {
        assert!(
            server.rll_mohm < 0.6 * client.rll_mohm,
            "{}: rll {} vs server {}",
            client.name,
            client.rll_mohm,
            server.rll_mohm
        );
        assert_eq!(
            LoadLine::new(client.rll_mohm).separation_compression(&reference),
            1.0,
            "{} must not trigger receiver calibration",
            client.name
        );
    }
    let compression = LoadLine::new(server.rll_mohm).separation_compression(&reference);
    assert!(
        compression < 0.6,
        "server compression {compression} should sit well below the floor"
    );
}

//! Property-based invariants of the SoC simulator under randomized
//! workloads: whatever programs run, physics and bookkeeping must hold.

use ichannels_repro::ichannels_soc::config::{PlatformSpec, SocConfig};
use ichannels_repro::ichannels_soc::noise::NoiseConfig;
use ichannels_repro::ichannels_soc::program::{Action, Script};
use ichannels_repro::ichannels_soc::sim::Soc;
use ichannels_repro::ichannels_uarch::isa::InstClass;
use ichannels_repro::ichannels_uarch::time::{Freq, SimTime};
use proptest::prelude::*;

fn arb_class() -> impl Strategy<Value = InstClass> {
    (0u8..7).prop_map(|r| InstClass::from_rank(r).expect("rank in range"))
}

fn arb_action() -> impl Strategy<Value = Action> {
    prop_oneof![
        (arb_class(), 100u64..50_000).prop_map(|(class, instructions)| Action::Run {
            class,
            instructions
        }),
        (1u64..200).prop_map(|us| Action::SleepFor(SimTime::from_us(us as f64))),
    ]
}

fn arb_program() -> impl Strategy<Value = Vec<Action>> {
    proptest::collection::vec(arb_action(), 1..12)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The package voltage never leaves the [base, Vccmax] envelope and
    /// the temperature never reaches Tjmax, for arbitrary two-thread
    /// workloads with noise.
    #[test]
    fn voltage_and_temperature_stay_in_envelope(
        p0 in arb_program(),
        p1 in arb_program(),
        seed in 0u64..1000,
    ) {
        let platform = PlatformSpec::cannon_lake();
        let mut cfg = SocConfig::pinned(platform, Freq::from_ghz(1.8))
            .with_noise(NoiseConfig::low())
            .with_trace(SimTime::from_us(50.0));
        cfg.seed = seed;
        let base_mv = cfg.platform.vf_curve.voltage_mv(Freq::from_ghz(1.8));
        let vccmax = cfg.platform.limits.vccmax_mv();
        let mut soc = Soc::new(cfg);
        soc.spawn(0, 0, Box::new(Script::new(p0, "p0")));
        soc.spawn(1, 0, Box::new(Script::new(p1, "p1")));
        soc.run_until_idle(SimTime::from_ms(20.0));
        for s in soc.trace().samples() {
            prop_assert!(s.vcc_mv >= base_mv - 1e-6, "vcc {} < base {}", s.vcc_mv, base_mv);
            prop_assert!(s.vcc_mv <= vccmax + 1e-6, "vcc {} > vccmax", s.vcc_mv);
            prop_assert!(s.temp_c < 100.0);
        }
    }

    /// Simulated time and the TSC are monotone, and every spawned
    /// program eventually halts (no livelock) for arbitrary workloads.
    #[test]
    fn time_is_monotone_and_programs_terminate(
        p0 in arb_program(),
        p1 in arb_program(),
    ) {
        let cfg = SocConfig::pinned(PlatformSpec::cannon_lake(), Freq::from_ghz(1.4));
        let mut soc = Soc::new(cfg);
        soc.spawn(0, 0, Box::new(Script::new(p0, "p0")));
        soc.spawn(0, 1, Box::new(Script::new(p1, "p1")));
        let mut last = soc.now();
        let mut last_tsc = soc.tsc_now();
        for _ in 0..200 {
            let next = soc.now() + SimTime::from_us(100.0);
            soc.run_until(next);
            prop_assert!(soc.now() >= last);
            prop_assert!(soc.tsc_now() >= last_tsc);
            last = soc.now();
            last_tsc = soc.tsc_now();
            if soc.all_idle() {
                break;
            }
        }
        prop_assert!(soc.all_idle(), "programs did not terminate in 20 ms");
    }

    /// Retired-instruction accounting matches the programs: a Run block
    /// of N instructions retires exactly N (±rounding).
    #[test]
    fn instruction_accounting_is_exact(
        blocks in proptest::collection::vec((arb_class(), 1_000u64..30_000), 1..6),
    ) {
        let total: u64 = blocks.iter().map(|(_, n)| *n).sum();
        let actions: Vec<Action> = blocks
            .into_iter()
            .map(|(class, instructions)| Action::Run { class, instructions })
            .collect();
        let cfg = SocConfig::pinned(PlatformSpec::cannon_lake(), Freq::from_ghz(1.4));
        let mut soc = Soc::new(cfg);
        soc.spawn(0, 0, Box::new(Script::new(actions, "counter")));
        soc.run_until_idle(SimTime::from_ms(50.0));
        let retired = soc.inst_retired(0, 0);
        prop_assert!(
            (retired - total as f64).abs() < 1.0,
            "retired {retired} vs expected {total}"
        );
    }

    /// The throttling period is invariant to the *length* of the PHI
    /// loop (it is a property of the voltage transition, not the loop):
    /// duration(N insts) − duration_unthrottled(N) is constant in N once
    /// the loop outlasts the TP.
    #[test]
    fn tp_is_independent_of_loop_length(extra in 1u64..5) {
        use ichannels_repro::ichannels_workload::loops::{MeasuredLoop, Recorder};
        use ichannels_repro::ichannels_uarch::ipc::nominal_ipc;
        let freq = Freq::from_ghz(1.4);
        let measure = |insts: u64| -> f64 {
            let cfg = SocConfig::pinned(PlatformSpec::cannon_lake(), freq);
            let mut soc = Soc::new(cfg);
            let rec = Recorder::new();
            soc.spawn(0, 0, Box::new(MeasuredLoop::once(InstClass::Heavy512, insts, rec.clone())));
            soc.run_until_idle(SimTime::from_ms(10.0));
            let d = rec.durations_us(soc.tsc())[0];
            let base = insts as f64 / nominal_ipc(InstClass::Heavy512) / freq.as_hz() as f64 * 1e6;
            d - base
        };
        let base_insts = 100_000u64;
        let tp1 = measure(base_insts);
        let tp2 = measure(base_insts * extra * 2);
        prop_assert!((tp1 - tp2).abs() < 0.2, "tp1 = {tp1}, tp2 = {tp2}");
    }
}

//! Catalog-wide invariant of the platform-calibrated receiver: since
//! every client rail resolves to the identity tuning, enabling the
//! calibrated receiver (the engine default) changes **only**
//! `skylake_server` cells. For every default-receiver scenario in the
//! catalog we re-run the identical scenario (same cell key, same seed)
//! under the legacy fixed-window receiver and demand byte-identical
//! trial JSONL on the client platforms — the exact guarantee that let
//! the PR-4 re-bless touch only server-affected goldens.

use ichannels_repro::ichannels_lab::report::TrialRow;
use ichannels_repro::ichannels_lab::scenario::{ChannelSelect, PlatformId, ReceiverSpec};
use ichannels_repro::ichannels_lab::{campaigns, Executor, Scenario};

/// Renders one record's JSONL line with the `rx-legacy` cell-key
/// segment stripped, so legacy-twin rows are comparable byte-for-byte
/// with their calibrated originals.
fn normalized_line(record: &ichannels_repro::ichannels_lab::TrialRecord) -> String {
    TrialRow::from_record(record)
        .jsonl_row()
        .to_json()
        .replace("/rx-legacy", "")
}

#[test]
fn calibrated_receiver_changes_only_skylake_server_cells() {
    let mut server_diffs = Vec::new();
    let mut compared = 0usize;
    for (name, grid) in campaigns::catalog(true) {
        // Only default-receiver IChannel cells A/B the calibrated
        // receiver: explicit receiver cells (the receiver_calibration
        // sweep) pin their tuning on both arms, and probe/baseline/
        // multi-level cells never consult the receiver (their legacy
        // twins are unsupported by the same honesty rule).
        let calibrated: Vec<Scenario> = grid
            .scenarios()
            .into_iter()
            .filter(|s| {
                s.receiver == ReceiverSpec::Calibrated && matches!(s.channel, ChannelSelect::Icc(_))
            })
            .collect();
        if calibrated.is_empty() {
            // modulation_capacity is all multi-level cells.
            continue;
        }
        let legacy: Vec<Scenario> = calibrated
            .iter()
            .map(|s| {
                let mut twin = s.clone();
                // Same seed, same cell — only the demodulator differs.
                twin.receiver = ReceiverSpec::Legacy;
                twin
            })
            .collect();
        let a = Executor::new(4).run(&calibrated);
        let b = Executor::new(4).run(&legacy);
        compared += a.len();
        for (ra, rb) in a.iter().zip(&b) {
            let (la, lb) = (normalized_line(ra), normalized_line(rb));
            if ra.scenario.platform == PlatformId::SkylakeServer {
                if la != lb {
                    server_diffs.push(ra.scenario.label());
                }
            } else {
                assert_eq!(
                    la,
                    lb,
                    "{name}: client cell {} must be byte-identical under the \
                     calibrated receiver",
                    ra.scenario.label()
                );
            }
        }
    }
    // The calibration is not a no-op: the server cross-core cells are
    // exactly where the adaptive receiver engages.
    assert!(compared > 20, "catalog A/B too small: {compared} pairs");
    assert!(
        !server_diffs.is_empty(),
        "no server cell changed — the calibrated receiver never engaged"
    );
    assert!(
        server_diffs
            .iter()
            .all(|label| label.contains("skylake_server/IccCoresCovert")),
        "calibration engaged outside the cross-core server cells: {server_diffs:?}"
    );
    assert!(
        server_diffs
            .iter()
            .any(|label| label.contains("skylake_server/IccCoresCovert/quiet")),
        "the fixed outlier cell must be among the changed cells: {server_diffs:?}"
    );
}

//! Golden-output regression suite: every figure/table module runs in
//! quick mode and the CSV artifacts it emits must match the checked-in
//! files under `tests/golden/` byte for byte, as must the trial/cell
//! CSVs of every catalog campaign.
//!
//! This is what makes engine refactors safe: any change to seeding,
//! enumeration order, probe math, aggregation, or export formatting
//! shows up as a diff against the goldens instead of silently shifting
//! the paper artifacts. To bless an intentional change, run
//!
//! ```text
//! ICHANNELS_REGOLDEN=1 cargo test --test golden_figures
//! ```
//!
//! and commit the regenerated files with a note explaining why the
//! numbers moved.
//!
//! The goldens were recorded after the PR-2 engine migration (and thus
//! on top of PR 1's FramedLink fresh-noise fix); they are the first
//! golden snapshot of the repository, not an update to an older one.

use std::fs;
use std::path::PathBuf;

use ichannels_bench::figs;
use ichannels_repro::ichannels_lab::{campaigns, Executor};

/// Every artifact the quick-mode run must produce.
const GOLDEN_FILES: &[&str] = &[
    // Figure/table modules.
    "fig06a_vcc_steps.csv",
    "fig06b_calculix.csv",
    "fig07a_limits.csv",
    "fig07b_phases.csv",
    "fig08a_tp_distribution.csv",
    "fig09a_guardband.csv",
    "fig09c_pstate.csv",
    "fig10a_tp_sweep.csv",
    "fig10b_preceded.csv",
    "fig11_idq_undelivered.csv",
    "fig12_throughput.csv",
    "fig13_tp_distribution.csv",
    "fig14a_ber_vs_event_rate.csv",
    "fig14b_error_matrix.csv",
    "fig14c_ber_vs_app_rate.csv",
    "table1_mitigations.csv",
    "table2_comparison.csv",
    "ablation_slew.csv",
    "ablation_reset_time.csv",
    "ablation_jitter.csv",
    // Catalog campaigns (quick): raw trials + per-cell aggregates.
    "client_vs_server_trials.csv",
    "client_vs_server_cells.csv",
    "noise_robustness_trials.csv",
    "noise_robustness_cells.csv",
    "mitigation_coverage_trials.csv",
    "mitigation_coverage_cells.csv",
    "modulation_capacity_trials.csv",
    "modulation_capacity_cells.csv",
    "receiver_calibration_trials.csv",
    "receiver_calibration_cells.csv",
];

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

/// First line where two documents differ, for a readable failure.
fn first_diff(a: &str, b: &str) -> String {
    for (i, (la, lb)) in a.lines().zip(b.lines()).enumerate() {
        if la != lb {
            return format!("line {}: golden `{la}` vs produced `{lb}`", i + 1);
        }
    }
    format!(
        "line counts differ: golden {} vs produced {}",
        a.lines().count(),
        b.lines().count()
    )
}

#[test]
fn golden_figure_outputs_match() {
    let out = std::env::temp_dir().join("ichannels_golden_results");
    let _ = fs::remove_dir_all(&out);
    // The figure modules write through `ichannels_bench::write_csv`,
    // which honors this variable. This test binary owns the variable
    // (single #[test] touching it), so there is no cross-test race.
    std::env::set_var("ICHANNELS_RESULTS", &out);

    figs::fig06::run(true);
    figs::fig07::run(true);
    figs::fig08::run(true);
    figs::fig09::run(true);
    figs::fig10::run(true);
    figs::fig11::run(true);
    let _ = figs::fig12::run(true);
    let _ = figs::fig13::run(true);
    figs::fig14::run(true);
    let _ = figs::table1::run(true);
    let _ = figs::table2::run(true);
    figs::ablation::run(true);
    for (name, grid) in campaigns::catalog(true) {
        campaigns::run(name, &grid, Executor::auto())
            .write_to(&out)
            .expect("campaign artifacts written");
    }

    let regolden = std::env::var_os("ICHANNELS_REGOLDEN").is_some();
    let mut failures = Vec::new();
    for name in GOLDEN_FILES {
        let produced = match fs::read_to_string(out.join(name)) {
            Ok(s) => s,
            Err(e) => {
                failures.push(format!("{name}: not produced ({e})"));
                continue;
            }
        };
        let gpath = golden_path(name);
        if regolden {
            fs::create_dir_all(gpath.parent().expect("golden dir")).expect("mkdir golden");
            fs::write(&gpath, &produced).expect("golden written");
            continue;
        }
        match fs::read_to_string(&gpath) {
            Ok(golden) if golden == produced => {}
            Ok(golden) => failures.push(format!("{name}: {}", first_diff(&golden, &produced))),
            Err(e) => failures.push(format!(
                "{name}: golden missing ({e}) — record with ICHANNELS_REGOLDEN=1"
            )),
        }
    }
    assert!(
        failures.is_empty(),
        "golden mismatches:\n  {}",
        failures.join("\n  ")
    );
    let _ = fs::remove_dir_all(&out);
}

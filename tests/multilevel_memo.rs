//! The multi-level channel's per-alphabet training is memoized through
//! the same process-wide calibration memo as `Calibration::for_config`
//! (PR 10), with the alphabet folded into the fingerprint. Mirrors
//! `tests/calibration_cache.rs` for the `MultiLevelChannel` surface:
//!
//! 1. **Purity** — memo hits, misses, and the disabled cache all
//!    produce identical per-digit means, and distinct alphabets train
//!    distinct memo cells.
//! 2. **Byte transparency** — the `modulation_capacity` campaign (the
//!    one BENCH_5 showed flat at ~1.0× because multi-level training
//!    bypassed the memo) renders byte-identical JSONL with the memo on
//!    and off.
//!
//! The memo is process-global state, so every test here serializes on
//! one lock and restores the enabled default before releasing it.

use std::sync::{Mutex, MutexGuard};

use ichannels_repro::ichannels::channel::{calibration, ChannelConfig, ChannelKind};
use ichannels_repro::ichannels::extended::{LevelAlphabet, MultiLevelChannel};
use ichannels_repro::ichannels_lab::campaigns;
use ichannels_repro::ichannels_lab::report::records_to_jsonl;
use ichannels_repro::ichannels_lab::Executor;

static MEMO_LOCK: Mutex<()> = Mutex::new(());

/// Serializes memo-global tests and restores the default (enabled)
/// state however the test exits.
struct MemoGuard(#[allow(dead_code)] MutexGuard<'static, ()>);

impl MemoGuard {
    fn acquire() -> Self {
        let guard = MEMO_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        MemoGuard(guard)
    }
}

impl Drop for MemoGuard {
    fn drop(&mut self) {
        calibration::set_memo_enabled(true);
    }
}

fn channel(alphabet: LevelAlphabet) -> MultiLevelChannel {
    MultiLevelChannel::new(
        ChannelKind::Thread,
        ChannelConfig::default_cannon_lake(),
        alphabet,
    )
}

/// Multi-level calibration is a pure function of the (config,
/// alphabet) fingerprint: the miss, the hit, and the disabled-cache
/// recomputation all agree, and a different alphabet occupies a
/// different memo cell.
#[test]
fn multilevel_calibrate_is_pure_in_the_memo() {
    let _guard = MemoGuard::acquire();
    calibration::set_memo_enabled(true);
    calibration::reset_memo();

    let ch = channel(LevelAlphabet::paper4());
    let miss = ch.calibrate(1);
    let after_miss = calibration::memo_stats();
    assert_eq!(after_miss.misses, 1, "first calibrate must train");

    let hit = ch.calibrate(1);
    let after_hit = calibration::memo_stats();
    assert_eq!(after_hit.hits, 1, "second calibrate must hit the memo");
    assert_eq!(miss, hit);

    // A different alphabet is a different memo cell: it trains anew
    // rather than serving the paper4 means.
    let other = channel(LevelAlphabet::phi6());
    let other_means = other.calibrate(1);
    let after_other = calibration::memo_stats();
    assert_eq!(
        after_other.misses, 2,
        "a new alphabet must train its own cell"
    );
    assert_ne!(miss.len(), other_means.len());

    // Disabled cache recomputes the identical bytes.
    calibration::set_memo_enabled(false);
    let uncached = ch.calibrate(1);
    assert_eq!(miss, uncached);
}

/// The campaign that motivated this memo extension renders
/// byte-identical JSONL with the memo on and off — the cache can never
/// leak into recorded artifacts.
#[test]
fn modulation_capacity_jsonl_is_byte_identical_with_memo_on_and_off() {
    let _guard = MemoGuard::acquire();
    let (name, grid) = campaigns::catalog(true)
        .into_iter()
        .find(|(name, _)| *name == "modulation_capacity")
        .expect("catalog campaign");
    let scenarios = grid.scenarios();
    calibration::set_memo_enabled(false);
    let off = Executor::new(4).run(&scenarios);
    calibration::set_memo_enabled(true);
    calibration::reset_memo();
    let on = Executor::new(4).run(&scenarios);
    assert_eq!(
        records_to_jsonl(&off),
        records_to_jsonl(&on),
        "{name}: the multi-level calibration memo leaked into trial bytes"
    );

    // And a second memo-on pass trains nothing: the per-alphabet means
    // are all served from the memo (this is precisely what BENCH_5
    // could not do when multi-level training bypassed the cache).
    let warm = calibration::memo_stats();
    assert!(warm.misses > 0, "first pass must train");
    Executor::new(4).run(&scenarios);
    let second = calibration::memo_stats();
    assert_eq!(
        second.misses, warm.misses,
        "second pass must not re-train any multi-level cell"
    );
    assert!(second.hits > warm.hits, "second pass must hit the memo");
}

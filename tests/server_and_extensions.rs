//! §6.4 (server processors) and the repository's extensions: sync
//! recovery, multi-level modulation, droop safety.

use ichannels_repro::ichannels::ber::random_symbols;
use ichannels_repro::ichannels::channel::{ChannelConfig, ChannelKind, IChannel};
use ichannels_repro::ichannels::extended::{evaluate_alphabet, LevelAlphabet};
use ichannels_repro::ichannels::sync;
use ichannels_repro::ichannels_soc::config::{PlatformSpec, SocConfig};
use ichannels_repro::ichannels_uarch::time::{Freq, SimTime};

fn server_cfg(freq_ghz: f64) -> ChannelConfig {
    let mut cfg = ChannelConfig::default_cannon_lake();
    cfg.soc = SocConfig::pinned(PlatformSpec::skylake_server(), Freq::from_ghz(freq_ghz));
    cfg
}

/// §6.4: "all Intel client and server processors from the last decade …
/// are affected by at least one of our three proposed covert-channels."
#[test]
fn all_three_channels_work_on_the_server_part() {
    for kind in [ChannelKind::Thread, ChannelKind::Smt, ChannelKind::Cores] {
        let ch = IChannel::new(kind, server_cfg(2.0));
        let cal = ch.calibrate(2);
        let symbols = random_symbols(8, 64);
        let tx = ch.transmit_symbols(&symbols, &cal);
        assert_eq!(tx.received, symbols, "{kind} failed on the server part");
    }
}

/// The server part has 28 cores: the cross-core channel works between
/// distant cores too (the rail is socket-wide).
#[test]
fn server_cross_core_channel_is_socket_wide() {
    // Note: IChannel pins sender to core 0, receiver to core 1; the
    // important property is that 26 other idle cores do not disturb it,
    // and that PHI noise from a *far* core does.
    let ch = IChannel::new(ChannelKind::Cores, server_cfg(2.0));
    let cal = ch.calibrate(2);
    let symbols = random_symbols(6, 65);
    let tx = ch.transmit_symbols(&symbols, &cal);
    assert_eq!(tx.received, symbols);

    // A heavy PHI app on core 27 (far side of the socket) shifts the
    // shared voltage component and corrupts low-level symbols of a
    // channel running on core 0 — the rail is socket-wide.
    use ichannels_repro::ichannels::symbols::Symbol;
    use ichannels_repro::ichannels_uarch::isa::InstClass;
    use ichannels_repro::ichannels_workload::apps::RandomPhiApp;
    let thread_ch = IChannel::new(ChannelKind::Thread, server_cfg(2.0));
    let thread_cal = thread_ch.calibrate(2);
    let low = vec![Symbol::new(0); 10];
    let deadline = thread_ch.config().start_offset + thread_ch.config().slot_period.scale(12.0);
    let tx = thread_ch.transmit_symbols_with(&low, &thread_cal, |soc| {
        soc.spawn(
            27,
            0,
            Box::new(RandomPhiApp::new(
                3_000.0,
                20_000,
                vec![InstClass::Heavy512],
                deadline,
                5,
            )),
        );
    });
    assert!(
        tx.bit_error_rate() > 0.1,
        "far-core PHI noise should corrupt low-level symbols (BER = {})",
        tx.bit_error_rate()
    );
}

/// Extension: more than 2 bits per transaction using 6 levels.
#[test]
fn six_level_modulation_beats_two_bits() {
    let ev = evaluate_alphabet(LevelAlphabet::phi6(), 36, 99);
    assert!(
        ev.mi_bits_per_symbol > 2.0,
        "6-level MI = {} bits/transaction",
        ev.mi_bits_per_symbol
    );
    assert!(ev.capacity_bps > 2_899.0, "capacity = {}", ev.capacity_bps);
}

/// Extension: preamble-based offset recovery (§4.3.3 synchronization).
#[test]
fn desynchronized_receiver_recovers_via_preamble() {
    let base = ChannelConfig::default_cannon_lake();
    let ch = IChannel::new(ChannelKind::Cores, base.clone());
    let cal = ch.calibrate(2);
    let preamble = sync::default_preamble();
    let result = sync::recover_offset(
        ChannelKind::Cores,
        &base,
        &cal,
        &preamble,
        SimTime::from_us(16.0),
        SimTime::from_us(4.0),
    );
    assert_eq!(result.best_score, 1.0);
}

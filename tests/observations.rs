//! Cross-crate integration tests for the paper's three observations
//! (§1) and five key conclusions (§5).

use ichannels_repro::ichannels_soc::config::{PlatformSpec, SocConfig};
use ichannels_repro::ichannels_soc::program::Script;
use ichannels_repro::ichannels_soc::sim::Soc;
use ichannels_repro::ichannels_uarch::ipc::nominal_ipc;
use ichannels_repro::ichannels_uarch::isa::InstClass;
use ichannels_repro::ichannels_uarch::time::{Freq, SimTime};
use ichannels_repro::ichannels_workload::loops::{
    instructions_for_duration, MeasuredLoop, PrecededLoop, Recorder,
};

fn tp_us(platform: &PlatformSpec, freq: Freq, class: InstClass, cores: usize) -> f64 {
    let mut soc = Soc::new(SocConfig::pinned(platform.clone(), freq));
    let insts = instructions_for_duration(class, freq, SimTime::from_us(60.0));
    let rec = Recorder::new();
    soc.spawn(
        0,
        0,
        Box::new(MeasuredLoop::once(class, insts, rec.clone())),
    );
    for c in 1..cores {
        soc.spawn(c, 0, Box::new(Script::run_loop(class, insts)));
    }
    soc.run_until_idle(SimTime::from_ms(5.0));
    let measured = rec.durations_us(soc.tsc())[0];
    let base = insts as f64 / nominal_ipc(class) / freq.as_hz() as f64 * 1e6;
    (measured - base).max(0.0) / 0.75
}

/// Observation 1 (Multi-Throttling-Thread): multi-level TPs proportional
/// to computational intensity, with at least 5 distinct levels.
#[test]
fn observation1_multi_level_throttling() {
    let p = PlatformSpec::cannon_lake();
    let freq = Freq::from_ghz(1.4);
    let tps: Vec<f64> = InstClass::ALL
        .iter()
        .map(|&c| tp_us(&p, freq, c, 1))
        .collect();
    // Monotone non-decreasing with intensity.
    for w in tps.windows(2) {
        assert!(w[1] >= w[0] - 1e-6, "tps = {tps:?}");
    }
    // At least 5 distinct levels (Key Conclusion 4).
    let mut distinct: Vec<f64> = Vec::new();
    for tp in &tps {
        if !distinct.iter().any(|d| (d - tp).abs() < 0.5) {
            distinct.push(*tp);
        }
    }
    assert!(distinct.len() >= 5, "levels = {tps:?}");
    // The preceding-class effect (Figure 10(b)): heavier preceding class
    // ⇒ shorter TP of the 512b-Heavy loop.
    let mut soc = Soc::new(SocConfig::pinned(p.clone(), freq));
    let rec_light = Recorder::new();
    soc.spawn(
        0,
        0,
        Box::new(PrecededLoop::new(
            InstClass::Light128,
            10_000,
            InstClass::Heavy512,
            50_000,
            SimTime::from_us(30.0),
            rec_light.clone(),
        )),
    );
    soc.run_until_idle(SimTime::from_ms(5.0));
    let mut soc2 = Soc::new(SocConfig::pinned(p, freq));
    let rec_heavy = Recorder::new();
    soc2.spawn(
        0,
        0,
        Box::new(PrecededLoop::new(
            InstClass::Heavy256,
            10_000,
            InstClass::Heavy512,
            50_000,
            SimTime::from_us(30.0),
            rec_heavy.clone(),
        )),
    );
    soc2.run_until_idle(SimTime::from_ms(5.0));
    assert!(rec_light.values()[0] > rec_heavy.values()[0]);
}

/// Observation 2 (Multi-Throttling-SMT): the sibling's scalar loop
/// duration encodes the PHI class executed by the other hardware thread.
#[test]
fn observation2_smt_cothrottling_is_multi_level() {
    let p = PlatformSpec::cannon_lake();
    let freq = Freq::from_ghz(1.4);
    let mut durations = Vec::new();
    for phi in [
        InstClass::Heavy128,
        InstClass::Light256,
        InstClass::Heavy256,
        InstClass::Heavy512,
    ] {
        let mut soc = Soc::new(SocConfig::pinned(p.clone(), freq));
        let phi_insts = instructions_for_duration(phi, freq, SimTime::from_us(15.0));
        soc.spawn(0, 1, Box::new(Script::run_loop(phi, phi_insts)));
        let rec = Recorder::new();
        let scalar_insts =
            instructions_for_duration(InstClass::Scalar64, freq, SimTime::from_us(25.0));
        soc.spawn(
            0,
            0,
            Box::new(MeasuredLoop::once(
                InstClass::Scalar64,
                scalar_insts,
                rec.clone(),
            )),
        );
        soc.run_until_idle(SimTime::from_ms(5.0));
        durations.push(rec.values()[0]);
    }
    // Strictly increasing with the sibling's PHI intensity.
    for w in durations.windows(2) {
        assert!(w[1] > w[0], "durations = {durations:?}");
    }
}

/// Observation 3 (Multi-Throttling-Cores): a second core's PHI within a
/// few hundred cycles queues behind the first core's voltage transition.
#[test]
fn observation3_cross_core_serialization_is_multi_level() {
    let p = PlatformSpec::cannon_lake();
    let freq = Freq::from_ghz(1.4);
    let mut tps = Vec::new();
    for sender in [
        InstClass::Heavy128,
        InstClass::Light256,
        InstClass::Heavy256,
        InstClass::Heavy512,
    ] {
        let mut soc = Soc::new(SocConfig::pinned(p.clone(), freq));
        let s_insts = instructions_for_duration(sender, freq, SimTime::from_us(15.0));
        soc.spawn(0, 0, Box::new(Script::run_loop(sender, s_insts)));
        soc.run_until(SimTime::from_ns(200.0));
        let rec = Recorder::new();
        let r_insts = instructions_for_duration(InstClass::Heavy128, freq, SimTime::from_us(10.0));
        soc.spawn(
            1,
            0,
            Box::new(MeasuredLoop::once(
                InstClass::Heavy128,
                r_insts,
                rec.clone(),
            )),
        );
        soc.run_until_idle(SimTime::from_ms(5.0));
        tps.push(rec.values()[0]);
    }
    for w in tps.windows(2) {
        assert!(w[1] > w[0], "receiver durations = {tps:?}");
    }
}

/// Key Conclusion 2: the frequency reduction after PHIs at turbo is due
/// to current limits, not thermals — it happens while the junction is
/// cold, and it does not happen at low frequency at all.
#[test]
fn key_conclusion2_not_thermal() {
    // At turbo: frequency drops within tens of µs while Tj ≈ ambient.
    let mut soc = Soc::new(SocConfig::quiet(PlatformSpec::cannon_lake()));
    let f0 = soc.freq();
    soc.spawn(
        0,
        0,
        Box::new(Script::run_loop(InstClass::Heavy256, 3_000_000)),
    );
    soc.run_until(SimTime::from_ms(1.0));
    assert!(soc.freq() < f0, "no frequency reduction at turbo");
    assert!(soc.temp_c() < 50.0, "temperature is not the cause");

    // At a pinned low frequency: no frequency change at all (Figure 6).
    let mut soc = Soc::new(SocConfig::pinned(
        PlatformSpec::cannon_lake(),
        Freq::from_ghz(1.4),
    ));
    soc.spawn(
        0,
        0,
        Box::new(Script::run_loop(InstClass::Heavy256, 1_000_000)),
    );
    soc.run_until(SimTime::from_ms(1.0));
    assert_eq!(soc.freq(), Freq::from_ghz(1.4));
}

/// Key Conclusion 3: the AVX power-gate wake is ns-scale — a negligible
/// fraction of the µs-scale TP (refuting NetSpectre's hypothesis).
#[test]
fn key_conclusion3_power_gating_is_not_the_cause() {
    // Haswell has no AVX gate yet still throttles for ~9 µs.
    let tp_haswell = tp_us(
        &PlatformSpec::haswell(),
        Freq::from_ghz(3.0),
        InstClass::Heavy256,
        1,
    );
    assert!(tp_haswell > 5.0, "tp = {tp_haswell}");
    // The gate wake on gated parts is tens of ns = ~0.1% of the TP.
    let wake = PlatformSpec::coffee_lake().avx_pg_wake.unwrap();
    let tp_coffee = tp_us(
        &PlatformSpec::coffee_lake(),
        Freq::from_ghz(3.0),
        InstClass::Heavy256,
        1,
    );
    let frac = wake.as_us() / tp_coffee;
    assert!(frac < 0.005, "gate fraction = {frac}");
}

/// Two-core exacerbation (§5.5): the TP roughly doubles when both cores
/// run PHIs concurrently (paper: 5 µs → 9 µs for 256b-Heavy at 1 GHz).
#[test]
fn two_core_exacerbation_matches_paper() {
    let p = PlatformSpec::cannon_lake();
    let one = tp_us(&p, Freq::from_ghz(1.0), InstClass::Heavy256, 1);
    let two = tp_us(&p, Freq::from_ghz(1.0), InstClass::Heavy256, 2);
    assert!((4.0..6.5).contains(&one), "1-core TP = {one}");
    assert!((8.0..11.0).contains(&two), "2-core TP = {two}");
}

//! Integration tests of the analysis layer's reproducibility
//! contract: the report bytes are a pure function of the trial-row
//! set and the [`AnalysisConfig`] — independent of row order, the
//! executor's thread count, and how the stream was sharded.

use ichannels_repro::ichannels::channel::ChannelKind;
use ichannels_repro::ichannels_analysis::{analyze_stream, Analysis, AnalysisConfig};
use ichannels_repro::ichannels_lab::report::{rows_to_jsonl, TrialRow};
use ichannels_repro::ichannels_lab::scenario::NoiseSpec;
use ichannels_repro::ichannels_lab::{Executor, Grid, ShardSpec};

fn reference_grid() -> Grid {
    Grid::new()
        .kinds(&[ChannelKind::Thread, ChannelKind::Cores])
        .noises(vec![NoiseSpec::Quiet, NoiseSpec::Low])
        .trials(3)
        .payload_symbols(4)
}

fn rows_with_threads(threads: usize) -> Vec<TrialRow> {
    Executor::new(threads)
        .run(&reference_grid().scenarios())
        .iter()
        .map(TrialRow::from_record)
        .collect()
}

fn analyze_rows<'a>(rows: impl IntoIterator<Item = &'a TrialRow>) -> String {
    let mut analysis = Analysis::new("ref", AnalysisConfig::default());
    for row in rows {
        analysis.add_row(row);
    }
    analysis.finish().to_jsonl()
}

#[test]
fn report_bytes_are_independent_of_threads_order_and_sharding() {
    let rows = rows_with_threads(1);
    let reference = analyze_rows(&rows);
    assert!(!reference.is_empty());

    // Thread count: a parallel run yields the same rows, hence the
    // same report bytes.
    let parallel = rows_with_threads(4);
    assert_eq!(analyze_rows(&parallel), reference);

    // Row order: feeding the stream backwards cannot move a byte.
    let reversed: Vec<&TrialRow> = rows.iter().rev().collect();
    assert_eq!(analyze_rows(reversed.into_iter()), reference);

    // Shard grouping: building one Analysis per shard slice and
    // merging them equals aggregating the union directly.
    let scenarios = reference_grid().scenarios();
    let mut merged = Analysis::new("ref", AnalysisConfig::default());
    for index in 0..3 {
        let spec = ShardSpec::new(index, 3).expect("valid spec");
        let keys: Vec<String> = spec.select(&scenarios).iter().map(|s| s.label()).collect();
        let mut shard = Analysis::new("ref", AnalysisConfig::default());
        for row in rows.iter().filter(|r| keys.contains(&r.trial_key())) {
            shard.add_row(row);
        }
        merged.merge(&shard);
    }
    assert_eq!(merged.rows(), rows.len() as u64);
    assert_eq!(merged.finish().to_jsonl(), reference);
}

#[test]
fn stream_text_and_in_memory_rows_agree() {
    let rows = rows_with_threads(2);
    let text = rows_to_jsonl(&rows);
    let analysis =
        analyze_stream("ref", &text, AnalysisConfig::default()).expect("every line is a trial row");
    assert_eq!(analysis.rows(), rows.len() as u64);
    assert_eq!(analysis.finish().to_jsonl(), analyze_rows(&rows));
}

#[test]
fn config_is_part_of_the_function() {
    let rows = rows_with_threads(1);
    let base = analyze_rows(&rows);
    let mut config = AnalysisConfig::default();
    config.seed ^= 1;
    let mut analysis = Analysis::new("ref", config);
    for row in &rows {
        analysis.add_row(row);
    }
    // A different bootstrap seed moves the CIs — the config is echoed
    // into the report precisely because the bytes depend on it.
    assert_ne!(analysis.finish().to_jsonl(), base);
}

//! Integration tests of the shard/merge/resume subsystem: for any
//! shard count the shards are an exact, duplicate-free cover of the
//! unsharded run; merging reassembles byte-identical artifacts (for
//! every catalog campaign); and an interrupted campaign resumes
//! without redoing finished trials.

use std::fs;
use std::path::PathBuf;
use std::sync::OnceLock;

use ichannels_meter::export::jsonl_to_string;
use ichannels_repro::ichannels::channel::ChannelKind;
use ichannels_repro::ichannels_lab::campaigns::{self, RunConfig};
use ichannels_repro::ichannels_lab::report::{rows_to_jsonl, TrialRow};
use ichannels_repro::ichannels_lab::scenario::NoiseSpec;
use ichannels_repro::ichannels_lab::shard::{merge_streams, ShardStream};
use ichannels_repro::ichannels_lab::{Executor, Grid, ShardSpec};
use proptest::prelude::*;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ichannels_sharding_{tag}"));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn reference_grid() -> Grid {
    Grid::new()
        .kinds(&[ChannelKind::Thread, ChannelKind::Cores])
        .noises(vec![NoiseSpec::Quiet, NoiseSpec::Low])
        .trials(3)
        .payload_symbols(4)
}

/// The reference run's rows, computed once (12 scenarios).
fn reference_rows() -> &'static Vec<TrialRow> {
    static ROWS: OnceLock<Vec<TrialRow>> = OnceLock::new();
    ROWS.get_or_init(|| {
        Executor::new(4)
            .run(&reference_grid().scenarios())
            .iter()
            .map(TrialRow::from_record)
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]
    #[test]
    fn shards_cover_the_unsharded_run_exactly_once(count in 1usize..=8) {
        let scenarios = reference_grid().scenarios();
        let mut concatenated = Vec::new();
        for index in 0..count {
            let spec = ShardSpec::new(index, count).expect("valid spec");
            let part = spec.select(&scenarios);
            // Balanced partition: sizes differ by at most one.
            prop_assert!(part.len().abs_diff(scenarios.len() / count) <= 1);
            concatenated.extend(part);
        }
        prop_assert_eq!(concatenated.len(), scenarios.len());
        // Duplicate-free cover: sorting the concatenation by trial key
        // reproduces the sorted unsharded list exactly — no scenario
        // lost, duplicated, or altered (seeds included).
        let key = |s: &ichannels_repro::ichannels_lab::Scenario| (s.label(), s.seed);
        let mut got: Vec<_> = concatenated.iter().map(key).collect();
        let mut want: Vec<_> = scenarios.iter().map(key).collect();
        got.sort();
        want.sort();
        prop_assert_eq!(got, want);
    }

    #[test]
    // Single-shard (1/1) runs carry no header and need no merge, so
    // the merge property ranges over genuine shard counts.
    fn merged_streams_are_byte_identical_for_any_shard_count(count in 2usize..=8) {
        let rows = reference_rows();
        let unsharded = rows_to_jsonl(rows);
        let streams: Vec<ShardStream> = (0..count)
            .map(|index| {
                let spec = ShardSpec::new(index, count).expect("valid spec");
                let mut doc = jsonl_to_string([spec.header_row("ref", rows.len())].iter());
                doc.push_str(&rows_to_jsonl(&spec.select(rows)));
                ShardStream::parse("mem", &doc).expect("stream parses")
            })
            .collect();
        let (name, merged) = merge_streams(streams).expect("streams merge");
        prop_assert_eq!(name, "ref");
        prop_assert_eq!(rows_to_jsonl(&merged), unsharded);
    }
}

#[test]
fn every_catalog_campaign_shards_and_merges_byte_identically() {
    // The acceptance sweep: shards 0/3..2/3 run serially (the CI
    // matrix runs them in 3 separate processes), merge, and every
    // artifact must match the unsharded run byte for byte.
    let full_dir = temp_dir("catalog_full");
    let shard_dir = temp_dir("catalog_shards");
    let merged_dir = temp_dir("catalog_merged");
    for (name, grid) in campaigns::catalog(true) {
        let full = campaigns::run_to_dir(
            name,
            &grid,
            Executor::auto(),
            &full_dir,
            RunConfig::default(),
        )
        .expect("unsharded run");
        let mut shard_paths = Vec::new();
        for index in 0..3 {
            let config = RunConfig {
                shard: ShardSpec::new(index, 3).expect("valid spec"),
                resume: false,
                progress: false,
            };
            let shard = campaigns::run_to_dir(name, &grid, Executor::auto(), &shard_dir, config)
                .expect("shard run");
            shard_paths.push(shard.paths[0].clone());
        }
        let merged = campaigns::merge_files(&merged_dir, &shard_paths).expect("shards merge");
        assert_eq!(merged.name, name);
        assert_eq!(merged.paths.len(), full.paths.len());
        for (merged_path, full_path) in merged.paths.iter().zip(&full.paths) {
            assert_eq!(
                fs::read(merged_path).expect("merged artifact"),
                fs::read(full_path).expect("unsharded artifact"),
                "{name}: {} diverges from {}",
                merged_path.display(),
                full_path.display()
            );
        }
    }
    let _ = fs::remove_dir_all(&full_dir);
    let _ = fs::remove_dir_all(&shard_dir);
    let _ = fs::remove_dir_all(&merged_dir);
}

#[test]
fn interrupted_campaign_resumes_without_redoing_finished_trials() {
    let dir = temp_dir("resume");
    let grid = reference_grid();
    let fresh = campaigns::run_to_dir("ref", &grid, Executor::auto(), &dir, RunConfig::default())
        .expect("fresh run");
    assert_eq!(fresh.executed, 12);
    let jsonl = &fresh.paths[0];
    let pristine = fs::read_to_string(jsonl).expect("stream readable");

    // Kill the campaign mid-stream: 7 intact rows, then a line torn
    // mid-write by the "crash".
    let lines: Vec<&str> = pristine.lines().collect();
    let torn = format!(
        "{}\n{}",
        lines[..7].join("\n"),
        &lines[7][..lines[7].len() / 3]
    );
    fs::write(jsonl, &torn).expect("truncation written");

    let resume = RunConfig {
        shard: ShardSpec::full(),
        resume: true,
        progress: false,
    };
    let resumed =
        campaigns::run_to_dir("ref", &grid, Executor::auto(), &dir, resume).expect("resumed run");
    assert_eq!(resumed.resumed, 7, "intact prefix reloaded, not re-run");
    assert_eq!(resumed.executed, 5, "torn row and the rest re-run");
    assert_eq!(
        fs::read_to_string(jsonl).expect("stream readable"),
        pristine,
        "resumed stream must be byte-identical to the uninterrupted run"
    );
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn resume_rejects_a_stream_written_under_a_different_shard_spec() {
    // A shard 0/2 run is interrupted; its (truncated) stream is then
    // offered to a 0/3 resume at the 0/3 path. The JSONL header must
    // reject the partition mismatch instead of silently re-seeding a
    // different slice of the grid.
    let dir = temp_dir("resume_mismatch");
    let grid = reference_grid();
    let spec02 = ShardSpec::new(0, 2).expect("valid spec");
    let run02 = campaigns::run_to_dir(
        "ref",
        &grid,
        Executor::auto(),
        &dir,
        RunConfig {
            shard: spec02,
            resume: false,
            progress: false,
        },
    )
    .expect("shard 0/2 run");
    // Truncate mid-line (the torn tail of a killed process) and move
    // the stream where the mismatched resume will look for it.
    let pristine = fs::read_to_string(&run02.paths[0]).expect("stream readable");
    let torn = &pristine[..pristine.len() * 2 / 3];
    let spec03 = ShardSpec::new(0, 3).expect("valid spec");
    let path03 = dir.join("ref_shard0of3_trials.jsonl");
    fs::write(&path03, torn).expect("torn stream written");
    let err = campaigns::run_to_dir(
        "ref",
        &grid,
        Executor::auto(),
        &dir,
        RunConfig {
            shard: spec03,
            resume: true,
            progress: false,
        },
    )
    .expect_err("partition mismatch must be rejected");
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    let message = err.to_string();
    assert!(
        message.contains("refusing to resume") && message.contains("0/2"),
        "unactionable error: {message}"
    );
    assert_eq!(
        fs::read_to_string(&path03).expect("stream readable"),
        torn,
        "a rejected resume must not touch the stream"
    );

    // The same torn stream at an *unsharded* path is rejected too: it
    // carries a shard header, so it is not this run's stream.
    let unsharded = dir.join("ref_trials.jsonl");
    fs::write(&unsharded, torn).expect("torn stream written");
    let err = campaigns::run_to_dir(
        "ref",
        &grid,
        Executor::auto(),
        &dir,
        RunConfig {
            shard: ShardSpec::full(),
            resume: true,
            progress: false,
        },
    )
    .expect_err("sharded stream must not satisfy an unsharded resume");
    assert!(err.to_string().contains("unsharded"), "{err}");

    // And a headerless (unsharded) stream cannot satisfy a sharded
    // resume.
    let full = campaigns::run_to_dir("ref", &grid, Executor::auto(), &dir, RunConfig::default())
        .expect("unsharded run");
    fs::copy(&full.paths[0], &path03).expect("stream copied");
    let err = campaigns::run_to_dir(
        "ref",
        &grid,
        Executor::auto(),
        &dir,
        RunConfig {
            shard: spec03,
            resume: true,
            progress: false,
        },
    )
    .expect_err("headerless stream must not satisfy a sharded resume");
    assert!(err.to_string().contains("no shard header"), "{err}");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn sharded_resume_composes() {
    // A shard interrupted and resumed still merges byte-identically.
    let dir = temp_dir("shard_resume");
    let grid = reference_grid();
    let spec = ShardSpec::new(1, 2).expect("valid spec");
    let sharded = RunConfig {
        shard: spec,
        resume: false,
        progress: false,
    };
    let shard =
        campaigns::run_to_dir("ref", &grid, Executor::auto(), &dir, sharded).expect("shard run");
    let pristine = fs::read_to_string(&shard.paths[0]).expect("stream readable");
    // Truncate to the header plus two rows.
    let keep: Vec<&str> = pristine.lines().take(3).collect();
    fs::write(&shard.paths[0], format!("{}\n", keep.join("\n"))).expect("truncated");
    let resumed = campaigns::run_to_dir(
        "ref",
        &grid,
        Executor::auto(),
        &dir,
        RunConfig {
            shard: spec,
            resume: true,
            progress: false,
        },
    )
    .expect("resumed shard");
    assert_eq!(resumed.resumed, 2);
    assert_eq!(resumed.executed, shard.rows.len() - 2);
    assert_eq!(
        fs::read_to_string(&shard.paths[0]).expect("stream readable"),
        pristine
    );
    let _ = fs::remove_dir_all(&dir);
}

//! # IChannels reproduction — workspace root
//!
//! Umbrella crate for the reproduction of *IChannels: Exploiting Current
//! Management Mechanisms to Create Covert Channels in Modern Processors*
//! (Haj-Yahya et al., ISCA 2021). It re-exports every workspace crate so
//! the runnable examples (`examples/`) and cross-crate integration tests
//! (`tests/`) have a single dependency.
//!
//! * [`ichannels`] — the covert channels, baselines, and mitigations;
//! * [`ichannels_lab`] — the parallel experiment-campaign engine
//!   (scenario grids, worker-pool executor, aggregation, campaigns);
//! * [`ichannels_soc`] — the event-driven SoC simulator;
//! * [`ichannels_pmu`] / [`ichannels_pdn`] / [`ichannels_uarch`] — the
//!   power-management, power-delivery, and microarchitecture substrates;
//! * [`ichannels_workload`] — measured loops, phase programs, apps;
//! * [`ichannels_meter`] — the DAQ model and statistics;
//! * [`ichannels_obs`] — the deterministic-safe telemetry layer
//!   (metrics registry, phase spans, mergeable snapshots);
//! * [`ichannels_analysis`] — streaming capacity statistics over
//!   campaign trial streams (bootstrap CIs, model capacity, axis
//!   sensitivity).
//!
//! See `README.md` for a quickstart, `DESIGN.md` for the system
//! inventory, and `EXPERIMENTS.md` for the paper-vs-measured record.

pub use ichannels;
pub use ichannels_analysis;
pub use ichannels_lab;
pub use ichannels_meter;
pub use ichannels_obs;
pub use ichannels_pdn;
pub use ichannels_pmu;
pub use ichannels_soc;
pub use ichannels_uarch;
pub use ichannels_workload;

//! Miniature version of the paper's §5 characterization on all three
//! platforms: throttling period per instruction class, the Figure 10(b)
//! preceding-class effect, and the SMT co-throttling check.
//!
//! Run with: `cargo run --release --example characterize`

use ichannels_soc::config::{PlatformSpec, SocConfig};
use ichannels_soc::program::Script;
use ichannels_soc::sim::Soc;
use ichannels_uarch::ipc::nominal_ipc;
use ichannels_uarch::isa::InstClass;
use ichannels_uarch::time::{Freq, SimTime};
use ichannels_workload::loops::{instructions_for_duration, MeasuredLoop, Recorder};

fn tp_us(platform: &PlatformSpec, freq: Freq, class: InstClass) -> f64 {
    let mut soc = Soc::new(SocConfig::pinned(platform.clone(), freq));
    let insts = instructions_for_duration(class, freq, SimTime::from_us(60.0));
    let rec = Recorder::new();
    soc.spawn(
        0,
        0,
        Box::new(MeasuredLoop::once(class, insts, rec.clone())),
    );
    soc.run_until_idle(SimTime::from_ms(5.0));
    let measured = rec.durations_us(soc.tsc())[0];
    let base = insts as f64 / nominal_ipc(class) / freq.as_hz() as f64 * 1e6;
    (measured - base).max(0.0) / 0.75
}

fn main() {
    println!("== Throttling period per instruction class (1 core) ==");
    print!("{:<14}", "class");
    let platforms = PlatformSpec::all();
    for p in &platforms {
        print!(" {:>22}", p.name.split(' ').next().unwrap_or(p.name));
    }
    println!();
    for class in InstClass::ALL {
        print!("{:<14}", class.to_string());
        for p in &platforms {
            let freq = p.pstates.highest_not_above(Freq::from_ghz(3.0));
            print!(" {:>20.2}us", tp_us(p, freq, class));
        }
        println!();
    }

    println!();
    println!("== SMT co-throttling (Cannon Lake, Observation 2) ==");
    let p = PlatformSpec::cannon_lake();
    let freq = Freq::from_ghz(1.4);
    // Scalar loop alone.
    let mut soc = Soc::new(SocConfig::pinned(p.clone(), freq));
    let rec = Recorder::new();
    let scalar_insts = instructions_for_duration(InstClass::Scalar64, freq, SimTime::from_us(20.0));
    soc.spawn(
        0,
        0,
        Box::new(MeasuredLoop::once(
            InstClass::Scalar64,
            scalar_insts,
            rec.clone(),
        )),
    );
    soc.run_until_idle(SimTime::from_ms(2.0));
    let alone = rec.durations_us(soc.tsc())[0];
    // Scalar loop with a 512b-Heavy sibling.
    let mut soc = Soc::new(SocConfig::pinned(p.clone(), freq));
    let rec = Recorder::new();
    let phi_insts = instructions_for_duration(InstClass::Heavy512, freq, SimTime::from_us(20.0));
    soc.spawn(
        0,
        1,
        Box::new(Script::run_loop(InstClass::Heavy512, phi_insts)),
    );
    soc.spawn(
        0,
        0,
        Box::new(MeasuredLoop::once(
            InstClass::Scalar64,
            scalar_insts,
            rec.clone(),
        )),
    );
    soc.run_until_idle(SimTime::from_ms(2.0));
    let with_phi = rec.durations_us(soc.tsc())[0];
    println!("  64b loop alone:              {alone:.2} µs");
    println!("  64b loop with PHI sibling:   {with_phi:.2} µs (co-throttled)");

    println!();
    println!("== Key conclusions reproduced ==");
    println!("  1. multi-level TPs proportional to computational intensity");
    println!("  2. FIVR (Haswell) TP < MBVR (Coffee/Cannon Lake) TP");
    println!("  3. SMT sibling co-throttles through the shared IDQ gate");
}

//! Exfiltrating a 128-bit key across physical cores on a noisy system,
//! with error correction.
//!
//! The threat model of §4: the sender holds a secret (here an AES-128
//! key) but has no overt channel; the receiver can reach the attacker.
//! They communicate through IccCoresCovert while the OS injects
//! interrupts/context switches and a concurrent application runs. A
//! Hamming(7,4) code plus a CRC-8 frame (§6.3's noise mitigations)
//! protects the payload.
//!
//! Run with: `cargo run --release --example exfiltrate_key`

use ichannels::channel::IChannel;
use ichannels::ecc::{check_frame, frame_with_crc, Hamming74};
use ichannels::symbols::{bits_to_bytes, bytes_to_bits, symbols_to_bits};
use ichannels_soc::noise::NoiseConfig;

fn main() {
    let key: [u8; 16] = [
        0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f,
        0x3c,
    ];
    println!("secret AES-128 key: {}", hex(&key));

    // Cross-core channel on a system with realistic OS noise.
    let mut channel = IChannel::icc_cores_covert();
    channel.config_mut().soc = channel.config().soc.clone().with_noise(NoiseConfig::low());
    let cal = channel.calibrate(3);

    // Frame with CRC-8, then Hamming(7,4)-encode (tolerates one flipped
    // bit per 7-bit block).
    let framed = frame_with_crc(&key);
    let coded_bits = {
        let mut bits = bytes_to_bits(&framed);
        if !bits.len().is_multiple_of(4) {
            bits.resize(bits.len() + 4 - bits.len() % 4, false);
        }
        Hamming74.encode(&bits)
    };
    let channel_bits = {
        let mut b = coded_bits.clone();
        if b.len() % 2 != 0 {
            b.push(false);
        }
        b
    };
    println!(
        "payload: {} bytes → {} channel bits (rate {:.2})",
        framed.len(),
        channel_bits.len(),
        framed.len() as f64 * 8.0 / channel_bits.len() as f64
    );

    let tx = channel.transmit_bits(&channel_bits, &cal);
    println!(
        "raw channel BER: {:.4} over {} transactions at {:.0} b/s",
        tx.bit_error_rate(),
        tx.sent.len(),
        tx.throughput_bps()
    );

    // Decode: undo the symbol mapping, the Hamming code, and the frame.
    let mut received_bits = symbols_to_bits(&tx.received);
    received_bits.truncate(coded_bits.len());
    let data_bits = Hamming74.decode(&received_bits);
    let mut bytes = bits_to_bytes(&data_bits);
    bytes.truncate(framed.len());
    match check_frame(&bytes) {
        Some(payload) => {
            println!("CRC check passed; recovered key: {}", hex(payload));
            assert_eq!(payload, key);
            println!("exfiltration succeeded");
        }
        None => {
            println!("CRC check FAILED — retransmission would be requested");
        }
    }
}

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

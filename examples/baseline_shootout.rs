//! Head-to-head shootout: the three IChannels covert channels against
//! the four state-of-the-art baselines (the live version of Figure 12
//! and Table 2).
//!
//! Run with: `cargo run --release --example baseline_shootout`

use ichannels::baselines::dfscovert::DfsCovertChannel;
use ichannels::baselines::netspectre::NetSpectreChannel;
use ichannels::baselines::powert::PowerTChannel;
use ichannels::baselines::turbocc::TurboCcChannel;
use ichannels::ber::evaluate;
use ichannels::channel::IChannel;

fn main() {
    println!(
        "{:<18} {:>10} {:>8} {:>10}   mechanism",
        "channel", "bits/s", "BER", "vs best"
    );
    let mut results: Vec<(String, f64, f64, &str)> = Vec::new();

    for (name, ch, mech) in [
        (
            "IccThreadCovert",
            IChannel::icc_thread_covert(),
            "multi-level TP, same thread",
        ),
        (
            "IccSMTcovert",
            IChannel::icc_smt_covert(),
            "IDQ co-throttling across SMT",
        ),
        (
            "IccCoresCovert",
            IChannel::icc_cores_covert(),
            "serialized VR transitions across cores",
        ),
    ] {
        let cal = ch.calibrate(3);
        let ev = evaluate(&ch, &cal, 30, 1);
        results.push((name.to_string(), ev.throughput_bps, ev.ber, mech));
    }

    let ns = NetSpectreChannel::default_cannon_lake();
    let cal = ns.calibrate(2);
    let tx = ns.transmit(&[true, false, true, true, false, true], cal);
    results.push((
        "NetSpectre".into(),
        tx.throughput_bps,
        tx.bit_error_rate(),
        "single-level TP, same thread",
    ));

    let turbo = TurboCcChannel::default();
    let cal = turbo.calibrate(1);
    let tx = turbo.transmit(&[true, false, true], cal);
    results.push((
        "TurboCC".into(),
        tx.throughput_bps,
        tx.bit_error_rate(),
        "turbo-license frequency changes (ms)",
    ));

    let pt = PowerTChannel::default();
    let bits = [true, false, true, false];
    let (dec, bps) = pt.transmit(&bits);
    let ber = bits.iter().zip(&dec).filter(|(a, b)| a != b).count() as f64 / bits.len() as f64;
    results.push((
        "POWERT".into(),
        bps,
        ber,
        "power-budget frequency clamp (ms)",
    ));

    let dfs = DfsCovertChannel::default();
    let (dec, bps) = dfs.transmit(&bits);
    let ber = bits.iter().zip(&dec).filter(|(a, b)| a != b).count() as f64 / bits.len() as f64;
    results.push((
        "DFScovert".into(),
        bps,
        ber,
        "governor frequency modulation (10s of ms)",
    ));

    let best = results
        .iter()
        .map(|(_, bps, _, _)| *bps)
        .fold(0.0f64, f64::max);
    for (name, bps, ber, mech) in &results {
        println!(
            "{:<18} {:>10.0} {:>8.3} {:>9.1}x   {}",
            name,
            bps,
            ber,
            best / bps,
            mech
        );
    }
    println!();
    println!("the current-management channels sit three orders of magnitude");
    println!("above the governor/thermal-era channels — because voltage ramps");
    println!("settle in microseconds, not milliseconds (paper §6.2)");
}

//! Demonstrates the three §7 mitigations against all three channels —
//! the Table 1 story as a live experiment.
//!
//! For each (mitigation × channel) pair the attacker *recalibrates*
//! against the defended system (worst case for the defender) and we
//! measure what capacity survives.
//!
//! Run with: `cargo run --release --example mitigation_demo`

use ichannels::channel::{ChannelConfig, ChannelKind};
use ichannels::mitigations::{evaluate_mitigation, secure_mode_power_overhead, Mitigation};
use ichannels_soc::config::PlatformSpec;
use ichannels_uarch::isa::InstClass;

fn main() {
    let base = ChannelConfig::default_cannon_lake();
    let kinds = [ChannelKind::Thread, ChannelKind::Smt, ChannelKind::Cores];

    println!(
        "{:<22} {:<16} {:>12} {:>12} {:>8}  verdict",
        "mitigation", "channel", "base b/s", "defended b/s", "BER"
    );
    for mitigation in Mitigation::ALL {
        for kind in kinds {
            let o = evaluate_mitigation(mitigation, kind, &base, 40, 2, 0xD1CE);
            println!(
                "{:<22} {:<16} {:>12.0} {:>12.0} {:>8.3}  {}",
                mitigation.name(),
                kind.name(),
                o.baseline.capacity_bps,
                o.mitigated.capacity_bps,
                o.mitigated.ber,
                o.effectiveness
            );
        }
        println!("{:<22} overhead: {}", "", mitigation.overhead());
        println!();
    }

    let p = PlatformSpec::cannon_lake();
    println!(
        "secure-mode static power cost: {:.1}% (AVX2 system) / {:.1}% (AVX-512 system)",
        secure_mode_power_overhead(&p, InstClass::Heavy256) * 100.0,
        secure_mode_power_overhead(&p, InstClass::Heavy512) * 100.0
    );
    println!("(compare: SGX costs up to 79% performance / 67% energy, §7)");
}

//! The §6.5 side channel: inferring a victim's instruction types.
//!
//! Unlike the covert channels, the victim here is *not* cooperating — it
//! simply runs its workload. A spy on the SMT sibling (and another on a
//! different core) times its own loops and classifies the victim's
//! instruction class from the co-throttling: scalar vs 128-bit vs
//! 256-bit vs 512-bit vector code is distinguishable.
//!
//! Run with: `cargo run --release --example instruction_spy`

use ichannels::attack::{InstructionSpy, SpyPlacement};
use ichannels_uarch::isa::InstClass;

fn main() {
    let classes = [
        InstClass::Scalar64,
        InstClass::Heavy128,
        InstClass::Heavy256,
        InstClass::Heavy512,
    ];

    for placement in [SpyPlacement::SmtSibling, SpyPlacement::OtherCore] {
        println!("spy placement: {placement:?}");
        let spy = InstructionSpy::default_cannon_lake(placement);

        // Offline profiling: the attacker learns the timing signature of
        // each victim class.
        let profile = spy.profile(&classes);
        for (class, mean) in &profile {
            println!("  profile {class:<12} → {mean:>9.0} cycles");
        }

        // Online attack: observe an uncooperative victim and classify.
        let mut correct = 0;
        let trials = 3;
        for &victim in &classes {
            for _ in 0..trials {
                let d = spy.observe(victim);
                let inferred = spy.classify(d, &profile);
                if inferred == victim {
                    correct += 1;
                }
            }
        }
        let total = classes.len() * trials;
        println!(
            "  inference accuracy: {}/{} ({:.0}%)",
            correct,
            total,
            correct as f64 / total as f64 * 100.0
        );
        println!();
    }
    println!("the victim's instruction mix leaks without its cooperation —");
    println!("the side-channel variant the paper leaves as future work (§6.5)");
}

//! Quickstart: exfiltrate a short message across SMT threads.
//!
//! The sender and receiver run on the two hardware threads of one
//! Cannon Lake core. The sender encodes two bits per transaction in the
//! computational intensity of a PHI loop; the receiver times a scalar
//! loop with `rdtsc` and decodes the bits from the co-throttling it
//! experiences (the paper's IccSMTcovert, §4.2).
//!
//! Run with: `cargo run --release --example quickstart`

use ichannels::channel::IChannel;
use ichannels::symbols::{bits_to_bytes, bytes_to_bits, symbols_to_bits};

fn main() {
    let secret = b"IChannels!";
    println!("secret message: {:?}", String::from_utf8_lossy(secret));

    // 1. Build the channel (Cannon Lake @ 1.4 GHz, sender on thread
    //    (0,0), receiver on (0,1)).
    let channel = IChannel::icc_smt_covert();
    println!(
        "channel: {} on {} (2 bits per transaction)",
        channel.kind(),
        channel.config().soc.platform.name,
    );

    // 2. Calibrate: learn the four throttling-period levels.
    let cal = channel.calibrate(3);
    println!("calibrated level means (TSC cycles): {:?}", cal.means());
    println!(
        "minimum level separation: {:.0} cycles (paper: > 2000)",
        cal.min_separation_cycles()
    );

    // 3. Transmit.
    let bits = bytes_to_bits(secret);
    let tx = channel.transmit_bits(&bits, &cal);
    let received = bits_to_bytes(&symbols_to_bits(&tx.received));
    println!(
        "received:       {:?}  (BER = {:.4}, {:.0} b/s)",
        String::from_utf8_lossy(&received),
        tx.bit_error_rate(),
        tx.throughput_bps()
    );
    assert_eq!(received, secret, "transmission corrupted");
    println!("covert transmission succeeded");
}
